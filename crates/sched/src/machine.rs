//! The simulated multicore machine.
//!
//! An event-driven engine that schedules tasks (see [`crate::TaskSpec`]) over `c` cores under
//! Linux semantics (global RT runqueue over per-core CFS runqueues with idle
//! pull-balancing) or an SRTF oracle. External controllers (the SFS
//! scheduler, bench harnesses) drive it through four operations, mirroring
//! what a user-space scheduler can actually do on Linux:
//!
//! * [`Machine::spawn`] — dispatch a function process (FaaS server → OS),
//! * [`Machine::set_policy`] — `schedtool`: switch a live process between
//!   `SCHED_FIFO` and `SCHED_NORMAL` (how SFS implements FILTER, §VI),
//! * [`Machine::proc_state`] / [`Machine::cpu_time`] — `/proc` polling
//!   (how SFS detects I/O blocking, §V-D),
//! * [`Machine::advance_to`] — advance virtual time, collecting
//!   notifications (task blocked / woke / finished) the controller reacts to.
//!
//! Determinism: all ties break on event insertion order ([`sfs_simcore::EventQueue`])
//! and core index, so identical inputs give bit-identical schedules.

use std::collections::BTreeSet;

use sfs_simcore::{EventQueue, SimDuration, SimTime};

use crate::cfs::{weight_of_nice, CfsParams, CfsRunqueue};
use crate::rt::{RtRunqueue, RR_TIMESLICE};
use crate::smp::{pick_imbalance, SmpParams};
use crate::task::{FinishedTask, Phase, Pid, Policy, ProcState, Task, TaskSpec};
use crate::trace::{ScheduleTrace, Segment};

/// Scheduling regime for the whole machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Linux: SCHED_FIFO/SCHED_RR over CFS, as configured per task.
    Linux,
    /// Offline oracle: preemptive Shortest Remaining (CPU) Time First.
    /// Task policies are ignored.
    Srtf,
}

/// Machine construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct MachineParams {
    /// Number of CPU cores.
    pub cores: usize,
    /// CFS tunables.
    pub cfs: CfsParams,
    /// Direct + indirect cost charged on every dispatch of a *different*
    /// task than the core last ran (register/TLB/cache disturbance). The
    /// paper's short-function amplification partly comes from this cost
    /// recurring on every CFS slice boundary.
    pub ctx_switch_cost: SimDuration,
    /// Consolidation-contention coefficient (0 disables). The paper's
    /// premise is that deep consolidation inflates execution duration
    /// beyond pure queueing (§I: cache/CPU/memory contention). When more
    /// CPU tasks are live-runnable than cores, every running task's service
    /// rate is inflated by `1 + beta × log2(active / cores)` — hundreds of
    /// co-live containers thrash caches and memory bandwidth, so a deep
    /// backlog drains at far below nominal throughput. Schedulers that
    /// bound effective concurrency (SFS's FILTER) avoid the inflation.
    pub contention_beta: f64,
    /// Upper bound on the contention inflation factor.
    pub contention_cap: f64,
    /// Scheduling regime.
    pub mode: SchedMode,
    /// SMP behaviour: periodic load balancing, migration penalty, and
    /// cache-affinity cost. The all-zero default disables every mechanism,
    /// making the machine bit-exact with the pre-SMP model.
    pub smp: SmpParams,
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams {
            cores: 4,
            cfs: CfsParams::default(),
            ctx_switch_cost: SimDuration::from_micros(5),
            contention_beta: 0.0,
            contention_cap: 6.0,
            mode: SchedMode::Linux,
            smp: SmpParams::default(),
        }
    }
}

impl MachineParams {
    /// Linux-mode machine with `cores` cores and default tunables.
    pub fn linux(cores: usize) -> Self {
        MachineParams {
            cores,
            mode: SchedMode::Linux,
            ..Default::default()
        }
    }

    /// SRTF-oracle machine with `cores` cores.
    pub fn srtf(cores: usize) -> Self {
        MachineParams {
            cores,
            mode: SchedMode::Srtf,
            ..Default::default()
        }
    }

    /// The same machine with the given SMP behaviour knobs.
    pub fn with_smp(mut self, smp: SmpParams) -> Self {
        self.smp = smp;
        self
    }
}

/// Events the machine reports back to its controller.
#[derive(Debug, Clone)]
pub enum Notification {
    /// Task got a CPU for the first time.
    FirstRun(Pid, SimTime),
    /// Task entered an I/O wait (kernel state → sleeping).
    Blocked(Pid, SimTime),
    /// Task finished its I/O wait (kernel state → runnable).
    Woke(Pid, SimTime),
    /// Task completed; full accounting attached.
    Finished(Box<FinishedTask>),
}

#[derive(Debug, Clone)]
enum Ev {
    /// The running task on `core` reaches its slice or phase boundary.
    /// Ignored if the core's generation has moved on.
    CoreFire { core: usize, gen: u64 },
    /// I/O completion for a sleeping task.
    Wake { pid: Pid, io: SimDuration },
    /// Periodic SMP load-balance tick (only scheduled when
    /// [`SmpParams::balance_interval`] is non-zero in Linux mode).
    Balance,
}

#[derive(Debug, Clone)]
struct Core {
    current: Option<Pid>,
    /// Invalidates in-flight CoreFire events when the assignment changes.
    gen: u64,
    /// Task the core last executed (context-switch cost bookkeeping).
    last_ran: Option<Pid>,
    /// When the current task started consuming CPU (after switch cost).
    /// Reset at every accounting boundary (`charge`).
    run_start: SimTime,
    /// When the current slice began (dispatch or slice renewal) — the base
    /// for recomputing `slice_end` when runqueue membership changes.
    slice_start: SimTime,
    slice_end: SimTime,
    /// Core-local clock: the latest instant this core's accounting
    /// advanced (dispatch or charge). Monotone per core; lags the machine
    /// clock while the core idles.
    clock: SimTime,
    cfs: CfsRunqueue,
}

impl Core {
    fn new() -> Core {
        Core {
            current: None,
            gen: 0,
            last_ran: None,
            run_start: SimTime::ZERO,
            slice_start: SimTime::ZERO,
            slice_end: SimTime::MAX,
            clock: SimTime::ZERO,
            cfs: CfsRunqueue::new(),
        }
    }

    /// Runnable CFS load on this core including a running CFS task.
    fn cfs_nr(&self, running_is_cfs: bool) -> u64 {
        self.cfs.len() as u64 + u64::from(running_is_cfs)
    }
}

/// The simulated machine. See module docs.
#[derive(Debug)]
pub struct Machine {
    params: MachineParams,
    now: SimTime,
    tasks: Vec<Task>,
    cores: Vec<Core>,
    rt: RtRunqueue,
    /// SRTF waiting pool keyed by (remaining CPU ns, pid).
    srtf_pool: BTreeSet<(u64, Pid)>,
    events: EventQueue<Ev>,
    out: Vec<Notification>,
    finished: Vec<FinishedTask>,
    total_ctx_switches: u64,
    /// Tasks migrated by the periodic balance tick (a subset of the
    /// per-task `migrations` total, which also counts wakeup placement
    /// moves and idle steals).
    balance_migrations: u64,
    /// Whether a [`Ev::Balance`] event is currently pending.
    balance_armed: bool,
    live_tasks: usize,
    /// Runnable + running CPU tasks (excludes sleepers and the dead);
    /// drives the consolidation-contention inflation.
    active_tasks: usize,
    /// Whether completion records accumulate in `finished` (default). The
    /// streaming path turns this off: records still flow out through
    /// `Notification::Finished`, but the machine holds no per-task history,
    /// keeping memory O(live tasks) instead of O(total tasks).
    retain_finished: bool,
    /// Optional execution trace (who ran where, when).
    trace: Option<ScheduleTrace>,
}

impl Machine {
    /// A machine at t = 0 with the given parameters.
    pub fn new(params: MachineParams) -> Machine {
        assert!(params.cores >= 1, "machine needs at least one core");
        Machine {
            cores: (0..params.cores).map(|_| Core::new()).collect(),
            params,
            now: SimTime::ZERO,
            tasks: Vec::new(),
            rt: RtRunqueue::new(),
            srtf_pool: BTreeSet::new(),
            events: EventQueue::new(),
            out: Vec::new(),
            finished: Vec::new(),
            total_ctx_switches: 0,
            balance_migrations: 0,
            balance_armed: false,
            live_tasks: 0,
            active_tasks: 0,
            retain_finished: true,
            trace: None,
        }
    }

    /// Control completion-record retention. With `false`, completions are
    /// only delivered through [`Notification::Finished`] and
    /// [`Machine::finished`] stays empty — the streaming-run mode where
    /// memory must not grow with request count.
    pub fn set_retain_finished(&mut self, retain: bool) {
        self.retain_finished = retain;
    }

    /// Length of the internal task table (total tasks spawned since the
    /// last [`Machine::compact`]). Streaming drivers watch this to decide
    /// when compacting is worthwhile.
    pub fn task_table_len(&self) -> usize {
        self.tasks.len()
    }

    /// Reclaim per-task memory at a quiescent point. Requires
    /// `live_tasks() == 0`; panics otherwise.
    ///
    /// Drops the task table (keeping its allocation) and restarts pid
    /// numbering from 0, so a long streaming run's memory is bounded by its
    /// peak *concurrency*, not its total request count. This is behaviour-
    /// transparent: with no live task there is no pending `Wake`
    /// (sleepers are live), `CoreFire` carries `(core, gen)` rather than a
    /// pid, per-pid tie-breaks only ever compare co-live tasks (whose
    /// relative order a fresh numbering preserves), and clearing each
    /// core's `last_ran` reproduces the always-charge-context-cost outcome
    /// that distinct pids would produce anyway. Skipped while tracing
    /// (trace segments refer to pids) or while completion records are
    /// retained (records would alias reused pids).
    pub fn compact(&mut self) {
        assert_eq!(self.live_tasks, 0, "compact() requires a quiescent machine");
        if self.trace.is_some() || self.retain_finished {
            return;
        }
        self.tasks.clear();
        for c in &mut self.cores {
            c.last_ran = None;
        }
    }

    /// Enable execution-trace recording (who ran where, when, under which
    /// policy). Cheap: one record per accounting boundary.
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(ScheduleTrace::new());
        }
    }

    /// The recorded trace, if tracing was enabled.
    pub fn trace(&self) -> Option<&ScheduleTrace> {
        self.trace.as_ref()
    }

    /// Current consolidation inflation factor (≥ 1).
    pub fn contention_factor(&self) -> f64 {
        if self.params.contention_beta <= 0.0 || self.active_tasks <= self.params.cores {
            return 1.0;
        }
        let ratio = self.active_tasks as f64 / self.params.cores as f64;
        (1.0 + self.params.contention_beta * ratio.log2()).min(self.params.contention_cap)
    }

    /// Transition a task's kernel state, maintaining the active count.
    fn set_state(&mut self, pid: Pid, new: ProcState) {
        let old = self.task(pid).state;
        let was_active = matches!(old, ProcState::Runnable | ProcState::Running);
        let is_active = matches!(new, ProcState::Runnable | ProcState::Running);
        if was_active && !is_active {
            self.active_tasks -= 1;
        } else if !was_active && is_active {
            self.active_tasks += 1;
        }
        self.task_mut(pid).state = new;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.params.cores
    }

    /// Tasks spawned but not yet finished.
    pub fn live_tasks(&self) -> usize {
        self.live_tasks
    }

    /// Completion records so far (in completion order).
    pub fn finished(&self) -> &[FinishedTask] {
        &self.finished
    }

    /// Consume the machine, returning all completion records.
    pub fn into_finished(self) -> Vec<FinishedTask> {
        self.finished
    }

    /// Machine-wide involuntary context-switch count.
    pub fn total_ctx_switches(&self) -> u64 {
        self.total_ctx_switches
    }

    // ------------------------------------------------------------------
    // Per-core (SMP) read-only queries
    // ------------------------------------------------------------------

    /// Number of cores — alias of [`Machine::cores`], matching the
    /// `nr_cpu_ids` spelling controllers expect.
    pub fn nr_cores(&self) -> usize {
        self.params.cores
    }

    /// Queued (runnable, not running) CFS tasks on `core`'s runqueue — the
    /// per-CPU depth `/proc/schedstat` exposes. RT tasks wait in the
    /// machine-global RT queue and are not counted here.
    pub fn core_depth(&self, core: usize) -> usize {
        self.cores[core].cfs.len()
    }

    /// The task currently running on `core`, if any.
    pub fn running_on(&self, core: usize) -> Option<Pid> {
        self.cores[core].current
    }

    /// `core`'s local clock: the latest instant its accounting advanced
    /// (a dispatch or a charge). Monotone per core; lags [`Machine::now`]
    /// while the core idles.
    pub fn core_clock(&self, core: usize) -> SimTime {
        self.cores[core].clock
    }

    /// The core `pid` last executed on (the `processor` field of
    /// `/proc/<pid>/stat`), or `None` before its first dispatch.
    pub fn last_ran_core(&self, pid: Pid) -> Option<usize> {
        self.task(pid).last_core
    }

    /// Number of queued machine-global RT tasks.
    pub fn rt_depth(&self) -> usize {
        self.rt.len()
    }

    /// Tasks migrated by the periodic balance tick so far (a subset of the
    /// per-task migration totals, which also count wakeup placement moves
    /// and idle steals).
    pub fn balance_migrations(&self) -> u64 {
        self.balance_migrations
    }

    /// Walk every task and runqueue and panic on any conservation
    /// violation: each live task must be in exactly one place (running on
    /// one core, queued on exactly one runqueue, or sleeping), and dead
    /// tasks must be nowhere. Diagnostic hook for the SMP property suite;
    /// O(tasks × cores), so not for hot loops.
    pub fn assert_conservation(&self) {
        for (i, c) in self.cores.iter().enumerate() {
            if let Some(pid) = c.current {
                assert_eq!(
                    self.task(pid).state,
                    ProcState::Running,
                    "core {i} runs {pid} but its state disagrees"
                );
                assert_eq!(
                    self.task(pid).home_core,
                    Some(i),
                    "core {i} runs {pid} but its home core disagrees"
                );
            }
        }
        for t in &self.tasks {
            let queued_cfs = self.cores.iter().filter(|c| c.cfs.contains(t.pid)).count();
            let queued_rt = usize::from(self.rt.contains(t.pid));
            let queued_srtf = self.srtf_pool.iter().filter(|&&(_, p)| p == t.pid).count();
            let running = self
                .cores
                .iter()
                .filter(|c| c.current == Some(t.pid))
                .count();
            let places = queued_cfs + queued_rt + queued_srtf + running;
            match t.state {
                ProcState::Running => assert_eq!(
                    (running, places),
                    (1, 1),
                    "{}: running task on {running} cores, {places} places",
                    t.pid
                ),
                ProcState::Runnable => assert_eq!(
                    (running, places),
                    (0, 1),
                    "{}: runnable task queued in {places} places",
                    t.pid
                ),
                ProcState::Sleeping | ProcState::Dead => assert_eq!(
                    places, 0,
                    "{}: off-runqueue task found in {places} places",
                    t.pid
                ),
            }
        }
    }

    // ------------------------------------------------------------------
    // Controller-facing operations
    // ------------------------------------------------------------------

    /// Spawn a task at the current time; it becomes runnable immediately.
    pub fn spawn(&mut self, spec: TaskSpec) -> Pid {
        spec.validate().expect("invalid task spec");
        let pid = Pid(self.tasks.len() as u64);
        let task = Task::new(pid, spec, self.now);
        let leading_io = task.phase();
        self.live_tasks += 1;
        // First live task (re-)arms the periodic balance tick; it re-arms
        // itself until the machine quiesces, so `run_until_quiescent`
        // still terminates.
        if self.params.smp.balancing()
            && self.params.mode == SchedMode::Linux
            && !self.balance_armed
        {
            self.balance_armed = true;
            self.events
                .push(self.now + self.params.smp.balance_interval, Ev::Balance);
        }
        self.active_tasks += 1; // Task::new starts Runnable
        self.tasks.push(task);
        // A task whose first phase is I/O sleeps immediately (it was started
        // and instantly blocked); schedule its wake.
        if let Some(Phase::Io(d)) = leading_io {
            self.set_state(pid, ProcState::Sleeping);
            self.events.push(self.now + d, Ev::Wake { pid, io: d });
        } else {
            self.make_runnable(pid);
        }
        pid
    }

    /// `schedtool`: change a live task's scheduling policy. No-op on dead
    /// tasks. In SRTF mode the policy field is updated but has no effect.
    pub fn set_policy(&mut self, pid: Pid, policy: Policy) {
        if self.task(pid).state == ProcState::Dead || self.task(pid).policy == policy {
            self.task_mut(pid).policy = policy;
            return;
        }
        if self.params.mode == SchedMode::Srtf {
            self.task_mut(pid).policy = policy;
            return;
        }
        match self.task(pid).state {
            ProcState::Sleeping => {
                self.task_mut(pid).policy = policy;
            }
            ProcState::Runnable => {
                self.dequeue_runnable(pid);
                self.task_mut(pid).policy = policy;
                self.make_runnable(pid);
            }
            ProcState::Running => {
                let core_id = self
                    .core_running(pid)
                    .expect("running task must occupy a core");
                self.charge(core_id);
                let old = self.task(pid).policy;
                self.task_mut(pid).policy = policy;
                if old.is_realtime() && !policy.is_realtime() {
                    // Demotion RT → CFS (SFS FILTER expiry): deliberate
                    // preemption; task goes to this core's CFS queue and the
                    // core repicks (possibly the same task if nothing waits).
                    self.preempt_current(core_id);
                    self.reschedule(core_id);
                } else {
                    // Promotion CFS → RT (FILTER entry) or same-class change:
                    // keep the core, recompute the slice from now.
                    self.cores[core_id].slice_start = self.now;
                    self.cores[core_id].slice_end = match policy {
                        Policy::Fifo { .. } => SimTime::MAX,
                        Policy::Rr { .. } => self.now + RR_TIMESLICE,
                        Policy::Normal { nice } => {
                            let c = &self.cores[core_id];
                            let w = weight_of_nice(nice);
                            let nr = c.cfs_nr(true);
                            let total = c.cfs.total_weight() + w as u64;
                            self.now + self.params.cfs.slice(nr, w, total)
                        }
                    };
                    self.cores[core_id].gen += 1;
                    self.arm_core_event(core_id);
                }
            }
            ProcState::Dead => unreachable!(),
        }
    }

    /// `/proc/<pid>/stat`-style state poll.
    pub fn proc_state(&self, pid: Pid) -> ProcState {
        self.task(pid).state
    }

    /// `/proc/<pid>/stat` utime: CPU time consumed so far, charged up to the
    /// last accounting boundary plus the in-flight run (as a real kernel
    /// exposes via clock-tick accounting).
    pub fn cpu_time(&self, pid: Pid) -> SimDuration {
        let t = self.task(pid);
        let mut total = t.cpu_time;
        if t.state == ProcState::Running {
            if let Some(core_id) = self.core_running(pid) {
                let c = &self.cores[core_id];
                if self.now > c.run_start {
                    total += self.now - c.run_start;
                }
            }
        }
        total
    }

    /// The task's current policy (as `sched_getscheduler` would report).
    pub fn policy_of(&self, pid: Pid) -> Policy {
        self.task(pid).policy
    }

    /// Earliest pending internal event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Advance virtual time to `t`, processing all internal events due at or
    /// before `t`, and return notifications generated along the way.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<Notification> {
        let mut out = Vec::new();
        self.advance_into(t, &mut out);
        out
    }

    /// As [`Machine::advance_to`], appending the notifications to a
    /// caller-owned buffer instead of allocating a fresh vector — the
    /// drain-and-reuse fast path for hot simulation loops (`Sim::run`
    /// clears and refills one buffer per step, so steady-state advancing
    /// performs zero notification-buffer allocations; the machine's
    /// internal staging vector keeps its capacity across calls too).
    ///
    /// The internal event loop stays incremental (peek + pop per event)
    /// rather than batch-popping: machine handlers legitimately schedule
    /// follow-up events (wakes, slice renewals) that must be observed
    /// within the same `advance` span.
    /// Delivery contract: every event due at or before `t` is processed
    /// within this call — **including events a handler schedules for
    /// exactly `t` while the span is being processed** (e.g. an I/O block
    /// at `t - d` scheduling its wake at `t`). The loop therefore re-polls
    /// the queue after every handler instead of batch-popping the due
    /// prefix; a batch pop would silently defer same-instant follow-ups to
    /// the next call, which controllers observe as a late notification.
    /// `tests/machine_scenarios.rs` pins this with end-of-span regression
    /// cases.
    pub fn advance_into(&mut self, t: SimTime, out: &mut Vec<Notification>) {
        debug_assert!(t >= self.now, "time must not go backwards");
        while let Some((at, ev)) = self.events.pop_until(t) {
            self.now = at;
            self.handle(ev);
        }
        // The contract above, enforced: nothing due within the span may
        // survive it.
        debug_assert!(
            self.events.peek_time().map_or(true, |next| next > t),
            "advance_into deferred a due event past its span"
        );
        self.now = t;
        out.append(&mut self.out);
    }

    /// Drain all pending events (run to quiescence).
    pub fn run_until_quiescent(&mut self) -> Vec<Notification> {
        while let Some((at, ev)) = self.events.pop() {
            self.now = at;
            self.handle(ev);
        }
        std::mem::take(&mut self.out)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn task(&self, pid: Pid) -> &Task {
        &self.tasks[pid.0 as usize]
    }

    fn task_mut(&mut self, pid: Pid) -> &mut Task {
        &mut self.tasks[pid.0 as usize]
    }

    fn core_running(&self, pid: Pid) -> Option<usize> {
        self.task(pid)
            .home_core
            .filter(|&c| self.cores[c].current == Some(pid))
    }

    fn weight(&self, pid: Pid) -> u32 {
        match self.task(pid).policy {
            Policy::Normal { nice } => weight_of_nice(nice),
            // RT tasks do not participate in CFS weight accounting; the
            // value is only used if one is (incorrectly) queued on CFS.
            _ => weight_of_nice(0),
        }
    }

    /// Charge the running task on `core` for CPU consumed up to `self.now`.
    fn charge(&mut self, core_id: usize) {
        let Some(pid) = self.cores[core_id].current else {
            return;
        };
        let run_start = self.cores[core_id].run_start;
        if self.now <= run_start {
            return;
        }
        let ran = self.now - run_start;
        self.cores[core_id].run_start = self.now;
        self.cores[core_id].clock = self.cores[core_id].clock.max(self.now);
        if let Some(trace) = self.trace.as_mut() {
            trace.record(Segment {
                pid,
                core: core_id,
                start: run_start,
                end: self.now,
                policy: self.tasks[pid.0 as usize].policy,
            });
        }
        let weight = self.weight(pid);
        let is_cfs = !self.task(pid).policy.is_realtime();
        // Under consolidation contention, wall time on the core advances the
        // task's work more slowly (cache/memory interference); utime still
        // ticks at wall rate, exactly like a thrashing real process.
        let progress = ran.mul_f64(1.0 / self.contention_factor());
        let t = self.task_mut(pid);
        t.cpu_time += ran;
        t.phase_rem = t.phase_rem.saturating_sub(progress);
        if is_cfs {
            t.vruntime += CfsParams::vruntime_delta(ran, weight);
            let v = t.vruntime;
            let leftmost = self.cores[core_id].cfs.peek().map(|(lv, _)| lv);
            let floor = leftmost.map_or(v, |lv| lv.min(v));
            self.cores[core_id].cfs.advance_min_vruntime(floor);
        }
    }

    /// Make a runnable task eligible for dispatch, with preemption checks.
    fn make_runnable(&mut self, pid: Pid) {
        self.set_state(pid, ProcState::Runnable);
        match self.params.mode {
            SchedMode::Srtf => self.enqueue_srtf(pid),
            SchedMode::Linux => match self.task(pid).policy {
                Policy::Fifo { prio } | Policy::Rr { prio } => self.enqueue_rt(pid, prio, false),
                Policy::Normal { .. } => self.enqueue_cfs(pid),
            },
        }
    }

    /// Remove a Runnable (queued) task from whatever structure holds it.
    fn dequeue_runnable(&mut self, pid: Pid) {
        debug_assert_eq!(self.task(pid).state, ProcState::Runnable);
        if self.params.mode == SchedMode::Srtf {
            let key = (self.task(pid).remaining_cpu().as_nanos(), pid);
            self.srtf_pool.remove(&key);
            return;
        }
        if self.task(pid).policy.is_realtime() {
            self.rt.remove(pid);
        } else if let Some(core_id) = self.task(pid).home_core {
            let v = self.task(pid).vruntime;
            self.cores[core_id].cfs.remove(pid, v);
        }
    }

    fn enqueue_srtf(&mut self, pid: Pid) {
        let rem = self.task(pid).remaining_cpu().as_nanos();
        self.srtf_pool.insert((rem, pid));
        // Dispatch to an idle core, else preempt the core running the
        // largest-remaining task if we beat it.
        if let Some(idle) = self.cores.iter().position(|c| c.current.is_none()) {
            self.reschedule(idle);
            return;
        }
        let victim = (0..self.cores.len()).max_by_key(|&i| {
            let vpid = self.cores[i].current.expect("no idle cores");
            self.remaining_running(i, vpid)
        });
        if let Some(vc) = victim {
            let vpid = self.cores[vc].current.expect("no idle cores");
            if self.remaining_running(vc, vpid) > self.task(pid).remaining_cpu().as_nanos() {
                self.charge(vc);
                self.preempt_current(vc);
                self.reschedule(vc);
            }
        }
    }

    /// Remaining CPU of the task running on core `i`, accounting for the
    /// in-flight (uncharged) run.
    fn remaining_running(&self, core_id: usize, pid: Pid) -> u64 {
        let t = self.task(pid);
        let c = &self.cores[core_id];
        let inflight = if self.now > c.run_start {
            (self.now - c.run_start).as_nanos()
        } else {
            0
        };
        t.remaining_cpu().as_nanos().saturating_sub(inflight)
    }

    fn enqueue_rt(&mut self, pid: Pid, prio: u8, resumed: bool) {
        if resumed {
            self.rt.push_front(pid, prio);
        } else {
            self.rt.push_back(pid, prio);
        }
        // 1. Idle core grabs it.
        if let Some(idle) = self.cores.iter().position(|c| c.current.is_none()) {
            self.reschedule(idle);
            return;
        }
        // 2. Preempt a core running CFS (RT always beats CFS).
        let cfs_victim = (0..self.cores.len()).find(|&i| {
            let vpid = self.cores[i].current.expect("no idle cores");
            !self.task(vpid).policy.is_realtime()
        });
        if let Some(vc) = cfs_victim {
            self.charge(vc);
            self.preempt_current(vc);
            self.reschedule(vc);
            return;
        }
        // 3. Preempt the lowest-priority RT core if strictly lower.
        let (vc, vprio) = (0..self.cores.len())
            .map(|i| {
                let vpid = self.cores[i].current.expect("no idle cores");
                (i, self.task(vpid).policy.rt_prio().unwrap_or(0))
            })
            .min_by_key(|&(_, p)| p)
            .expect("at least one core");
        if self.rt.would_preempt(vprio) {
            let _ = vc;
            self.charge(vc);
            self.preempt_current(vc);
            self.reschedule(vc);
        }
    }

    fn enqueue_cfs(&mut self, pid: Pid) {
        // Place on the least-loaded core (by CFS runnable count, counting a
        // running CFS task; cores busy with RT count their queue only).
        let core_id = (0..self.cores.len())
            .min_by_key(|&i| {
                let c = &self.cores[i];
                let running_cfs = c
                    .current
                    .is_some_and(|p| !self.task(p).policy.is_realtime());
                c.cfs_nr(running_cfs)
            })
            .expect("at least one core");
        let floor = self.cores[core_id]
            .cfs
            .place_vruntime(self.task(pid).vruntime);
        self.task_mut(pid).vruntime = floor;
        if self.task(pid).home_core != Some(core_id) && self.task(pid).first_run.is_some() {
            self.task_mut(pid).migrations += 1;
        }
        self.task_mut(pid).home_core = Some(core_id);
        let w = self.weight(pid);
        self.cores[core_id].cfs.enqueue(pid, floor, w);

        let core = &self.cores[core_id];
        match core.current {
            None => self.reschedule(core_id),
            Some(curr) if !self.task(curr).policy.is_realtime() => {
                // Wakeup preemption: preempt if the waking task's vruntime
                // lags the current one by more than wakeup_granularity.
                let curr_v = self.running_vruntime(core_id, curr);
                let gran = self.params.cfs.wakeup_granularity.as_nanos();
                if floor + gran < curr_v {
                    self.charge(core_id);
                    self.preempt_current(core_id);
                    self.reschedule(core_id);
                } else {
                    // The runqueue grew: the current task's fair slice
                    // shrank (the kernel's per-tick check_preempt_tick).
                    self.refresh_current_slice(core_id);
                }
            }
            Some(_) => {} // RT running: CFS task waits.
        }
    }

    /// Recompute the running CFS task's slice after its core's runqueue
    /// membership changed; preempt immediately if the new slice is already
    /// exhausted.
    fn refresh_current_slice(&mut self, core_id: usize) {
        let Some(pid) = self.cores[core_id].current else {
            return;
        };
        let Policy::Normal { nice } = self.task(pid).policy else {
            return;
        };
        if self.params.mode == SchedMode::Srtf {
            return;
        }
        let w = weight_of_nice(nice);
        let (nr, total) = {
            let c = &self.cores[core_id];
            (c.cfs_nr(true), c.cfs.total_weight() + w as u64)
        };
        let slice = self.params.cfs.slice(nr, w, total);
        let new_end = self.cores[core_id].slice_start + slice;
        self.cores[core_id].slice_end = new_end;
        self.cores[core_id].gen += 1;
        if new_end <= self.now {
            self.charge(core_id);
            if self.task(pid).phase_rem.is_zero() {
                self.phase_complete(core_id, pid);
            } else {
                self.slice_expired(core_id, pid);
            }
        } else {
            self.arm_core_event(core_id);
        }
    }

    /// vruntime of the running task on `core` including the in-flight run.
    fn running_vruntime(&self, core_id: usize, pid: Pid) -> u64 {
        let t = self.task(pid);
        let c = &self.cores[core_id];
        let inflight = if self.now > c.run_start {
            CfsParams::vruntime_delta(self.now - c.run_start, self.weight(pid))
        } else {
            0
        };
        t.vruntime + inflight
    }

    /// Stop the current task on `core` (already charged) and put it back on
    /// its runqueue as Runnable. Counts an involuntary context switch if
    /// some other task is waiting to use a core.
    fn preempt_current(&mut self, core_id: usize) {
        let Some(pid) = self.cores[core_id].current.take() else {
            return;
        };
        self.cores[core_id].gen += 1;
        self.set_state(pid, ProcState::Runnable);
        let others_waiting = !self.rt.is_empty()
            || !self.srtf_pool.is_empty()
            || self.cores.iter().any(|c| !c.cfs.is_empty());
        if others_waiting {
            self.task_mut(pid).ctx_switches += 1;
            self.total_ctx_switches += 1;
        }
        match self.params.mode {
            SchedMode::Srtf => {
                let rem = self.task(pid).remaining_cpu().as_nanos();
                self.srtf_pool.insert((rem, pid));
            }
            SchedMode::Linux => match self.task(pid).policy {
                // A preempted FIFO task resumes at the head of its level.
                Policy::Fifo { prio } => self.rt.push_front(pid, prio),
                Policy::Rr { prio } => self.rt.push_front(pid, prio),
                Policy::Normal { .. } => {
                    let floor = self.cores[core_id]
                        .cfs
                        .place_vruntime(self.task(pid).vruntime);
                    self.task_mut(pid).vruntime = floor;
                    self.task_mut(pid).home_core = Some(core_id);
                    let w = self.weight(pid);
                    self.cores[core_id].cfs.enqueue(pid, floor, w);
                }
            },
        }
    }

    /// Pick and dispatch the next task for an empty core.
    fn reschedule(&mut self, core_id: usize) {
        debug_assert!(self.cores[core_id].current.is_none());
        let next = match self.params.mode {
            SchedMode::Srtf => self.srtf_pool.pop_first().map(|(_, p)| p),
            SchedMode::Linux => {
                if let Some((pid, _)) = self.rt.pop() {
                    Some(pid)
                } else if let Some((_, pid)) = self.cores[core_id].cfs.pop() {
                    Some(pid)
                } else {
                    self.steal_for(core_id)
                }
            }
        };
        match next {
            Some(pid) => self.dispatch(core_id, pid),
            None => {
                self.cores[core_id].gen += 1; // invalidate stale fires
            }
        }
    }

    /// Idle pull-balancing: take the largest-vruntime task from the most
    /// loaded CFS runqueue.
    fn steal_for(&mut self, core_id: usize) -> Option<Pid> {
        let victim = (0..self.cores.len())
            .filter(|&i| i != core_id && !self.cores[i].cfs.is_empty())
            .max_by_key(|&i| self.cores[i].cfs.len())?;
        let (v, pid) = self.cores[victim].cfs.pop_last()?;
        self.task_mut(pid).migrations += 1;
        self.task_mut(pid).home_core = Some(core_id);
        // Renormalise vruntime onto the thief's queue.
        let placed = self.cores[core_id].cfs.place_vruntime(v);
        self.task_mut(pid).vruntime = placed;
        Some(pid)
    }

    /// Put `pid` on `core` and arm its boundary event.
    fn dispatch(&mut self, core_id: usize, pid: Pid) {
        debug_assert_eq!(self.task(pid).state, ProcState::Runnable);
        debug_assert!(
            matches!(self.task(pid).phase(), Some(Phase::Cpu(_))),
            "dispatched task must be in a CPU phase"
        );
        let mut cost = if self.cores[core_id].last_ran == Some(pid) {
            SimDuration::ZERO
        } else {
            self.params.ctx_switch_cost
        };
        // Cache-affinity: resuming on a different core than the task last
        // executed on costs a cold-cache refill on top of the switch.
        if !self.params.smp.affinity_cost.is_zero()
            && self.task(pid).last_core.is_some_and(|c| c != core_id)
        {
            cost += self.params.smp.affinity_cost;
        }
        // One-shot penalty deposited by the balance tick when it force-
        // migrated this task.
        cost += std::mem::take(&mut self.task_mut(pid).pending_migration_cost);
        let start = self.now + cost;
        {
            let c = &mut self.cores[core_id];
            c.current = Some(pid);
            c.last_ran = Some(pid);
            c.gen += 1;
            c.run_start = start;
            c.slice_start = start;
            // `max`: a dispatch pre-pays its switch cost (`start` is in the
            // future); if it is preempted before then and the core turns
            // over at a cheaper cost, the earlier start must not rewind
            // the core clock.
            c.clock = c.clock.max(start);
        }
        self.set_state(pid, ProcState::Running);
        self.task_mut(pid).home_core = Some(core_id);
        self.task_mut(pid).last_core = Some(core_id);
        if self.task(pid).first_run.is_none() {
            self.task_mut(pid).first_run = Some(self.now);
            self.out.push(Notification::FirstRun(pid, self.now));
        }
        // Slice.
        let slice_end = match self.params.mode {
            SchedMode::Srtf => SimTime::MAX,
            SchedMode::Linux => match self.task(pid).policy {
                Policy::Fifo { .. } => SimTime::MAX,
                Policy::Rr { .. } => start + RR_TIMESLICE,
                Policy::Normal { nice } => {
                    let c = &self.cores[core_id];
                    let w = weight_of_nice(nice);
                    let nr = c.cfs_nr(true);
                    let total = c.cfs.total_weight() + w as u64;
                    start + self.params.cfs.slice(nr, w, total)
                }
            },
        };
        self.cores[core_id].slice_end = slice_end;
        self.arm_core_event(core_id);
    }

    /// (Re-)arm the boundary event for the core's current assignment. The
    /// phase boundary is projected with the *current* contention factor;
    /// if contention changes before it fires, the fire handler re-charges
    /// and re-arms, converging on the true boundary.
    fn arm_core_event(&mut self, core_id: usize) {
        let Some(pid) = self.cores[core_id].current else {
            return;
        };
        let f = self.contention_factor();
        let c = &self.cores[core_id];
        let phase_end = c.run_start + self.task(pid).phase_rem.mul_f64(f);
        let fire = phase_end.min(c.slice_end);
        let gen = c.gen;
        self.events.push(fire, Ev::CoreFire { core: core_id, gen });
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::CoreFire { core, gen } => {
                if self.cores[core].gen != gen || self.cores[core].current.is_none() {
                    return; // stale
                }
                self.charge(core);
                let pid = self.cores[core].current.expect("checked above");
                if self.task(pid).phase_rem.is_zero() {
                    self.phase_complete(core, pid);
                } else {
                    self.slice_expired(core, pid);
                }
            }
            Ev::Wake { pid, io } => self.wake(pid, io),
            Ev::Balance => self.balance_tick(),
        }
    }

    /// Periodic load balance: migrate one task from the busiest to the
    /// idlest CFS runqueue when the queued-depth gap reaches the threshold
    /// (the kernel's conservative `load_balance` envelope: one pull per
    /// tick, never across a trivial imbalance). The migrated task is
    /// charged [`SmpParams::migration_cost`] at its next dispatch.
    fn balance_tick(&mut self) {
        self.balance_armed = false;
        if self.live_tasks > 0 {
            self.balance_armed = true;
            self.events
                .push(self.now + self.params.smp.balance_interval, Ev::Balance);
        }
        let depths: Vec<u64> = self.cores.iter().map(|c| c.cfs.len() as u64).collect();
        let Some((src, dst)) = pick_imbalance(&depths, self.params.smp.balance_threshold) else {
            return;
        };
        // Pull from the tail: the task that would run last on the busy
        // core loses the least cache state by moving (same choice as the
        // idle-steal path).
        let Some((v, pid)) = self.cores[src].cfs.pop_last() else {
            return;
        };
        self.task_mut(pid).migrations += 1;
        self.balance_migrations += 1;
        let mig_cost = self.params.smp.migration_cost;
        self.task_mut(pid).pending_migration_cost += mig_cost;
        let placed = self.cores[dst].cfs.place_vruntime(v);
        self.task_mut(pid).vruntime = placed;
        self.task_mut(pid).home_core = Some(dst);
        let w = self.weight(pid);
        self.cores[dst].cfs.enqueue(pid, placed, w);
        match self.cores[dst].current {
            // An idle destination (only possible transiently, e.g. a tick
            // coinciding with a completion) starts the migrant at once.
            None => self.reschedule(dst),
            // The destination queue grew: its running CFS task's fair
            // slice shrank, exactly as on a wakeup enqueue.
            Some(curr) if !self.task(curr).policy.is_realtime() => {
                self.refresh_current_slice(dst);
            }
            Some(_) => {}
        }
    }

    /// The running task finished its current CPU phase.
    fn phase_complete(&mut self, core_id: usize, pid: Pid) {
        let next_idx = self.task(pid).phase_idx + 1;
        self.task_mut(pid).phase_idx = next_idx;
        match self.task(pid).phases.get(next_idx).copied() {
            None => {
                // Done.
                self.cores[core_id].current = None;
                self.cores[core_id].gen += 1;
                self.set_state(pid, ProcState::Dead);
                self.task_mut(pid).home_core = None;
                self.live_tasks -= 1;
                let rec = self.task(pid).finished_record(self.now);
                if self.retain_finished {
                    self.finished.push(rec.clone());
                }
                self.out.push(Notification::Finished(Box::new(rec)));
                self.reschedule(core_id);
            }
            Some(Phase::Io(d)) => {
                // Voluntary block: off-CPU, schedule the wake.
                self.cores[core_id].current = None;
                self.cores[core_id].gen += 1;
                self.set_state(pid, ProcState::Sleeping);
                self.task_mut(pid).phase_rem = d;
                self.out.push(Notification::Blocked(pid, self.now));
                self.events.push(self.now + d, Ev::Wake { pid, io: d });
                self.reschedule(core_id);
            }
            Some(Phase::Cpu(d)) => {
                // Back-to-back CPU phases: continue running seamlessly.
                self.task_mut(pid).phase_rem = d;
                self.cores[core_id].gen += 1;
                self.arm_core_event(core_id);
            }
        }
    }

    /// The running task exhausted its slice (CFS or RR).
    fn slice_expired(&mut self, core_id: usize, pid: Pid) {
        // Unsliced tasks (FIFO, or anything under SRTF) can only get here
        // via a stale phase-end projection (contention rose after arming):
        // re-arm with the current factor instead of preempting.
        let unsliced = self.params.mode == SchedMode::Srtf
            || matches!(self.task(pid).policy, Policy::Fifo { .. });
        if unsliced && self.cores[core_id].slice_end == SimTime::MAX {
            self.cores[core_id].gen += 1;
            self.arm_core_event(core_id);
            return;
        }
        let has_competition = match self.params.mode {
            SchedMode::Srtf => false, // SRTF never slices
            SchedMode::Linux => {
                !self.rt.is_empty()
                    || !self.cores[core_id].cfs.is_empty()
                    // Another queue could be stolen from if we vacate.
                    || self
                        .cores
                        .iter()
                        .enumerate()
                        .any(|(i, c)| i != core_id && c.cfs.len() > 1)
            }
        };
        if !has_competition {
            // Nothing else would run; extend the slice in place without a
            // context switch (the kernel's check_preempt_tick finds no
            // competitor).
            let renew = match self.task(pid).policy {
                Policy::Rr { .. } => RR_TIMESLICE,
                Policy::Normal { nice } => {
                    let w = weight_of_nice(nice);
                    self.params.cfs.slice(1, w, w as u64)
                }
                Policy::Fifo { .. } => SimDuration::MAX,
            };
            self.cores[core_id].slice_start = self.now;
            self.cores[core_id].slice_end = self.now.saturating_add(renew);
            self.cores[core_id].gen += 1;
            self.arm_core_event(core_id);
            return;
        }
        match self.task(pid).policy {
            Policy::Rr { prio } => {
                // Round-robin: go to the *tail* of the priority level.
                self.cores[core_id].current = None;
                self.cores[core_id].gen += 1;
                self.set_state(pid, ProcState::Runnable);
                self.task_mut(pid).ctx_switches += 1;
                self.total_ctx_switches += 1;
                self.rt.push_back(pid, prio);
                self.reschedule(core_id);
            }
            _ => {
                self.preempt_current(core_id);
                self.reschedule(core_id);
            }
        }
    }

    /// I/O completed: account sleep time and requeue.
    fn wake(&mut self, pid: Pid, io: SimDuration) {
        debug_assert_eq!(self.task(pid).state, ProcState::Sleeping);
        self.task_mut(pid).io_time += io;
        let next_idx = self.task(pid).phase_idx + 1;
        self.task_mut(pid).phase_idx = next_idx;
        match self.task(pid).phases.get(next_idx).copied() {
            None => {
                // Task ended with an I/O phase.
                self.set_state(pid, ProcState::Dead);
                self.task_mut(pid).home_core = None;
                self.live_tasks -= 1;
                let rec = self.task(pid).finished_record(self.now);
                if self.retain_finished {
                    self.finished.push(rec.clone());
                }
                self.out.push(Notification::Finished(Box::new(rec)));
            }
            Some(Phase::Cpu(d)) => {
                self.task_mut(pid).phase_rem = d;
                self.out.push(Notification::Woke(pid, self.now));
                self.make_runnable(pid);
            }
            Some(Phase::Io(d)) => {
                // Back-to-back I/O phases: keep sleeping.
                self.task_mut(pid).phase_rem = d;
                self.events.push(self.now + d, Ev::Wake { pid, io: d });
            }
        }
    }
}
