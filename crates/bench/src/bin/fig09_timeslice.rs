//! Fig. 9: adaptive time-slice tuning vs statically fixed slices
//! (S ∈ {50, 100, 200} ms) at 80% load (§VIII-B).
//!
//! Expected shape: adaptive SFS beats the 100/200 ms fixed slices overall;
//! the 50 ms slice helps ~30% of short requests but hurts the rest.

use sfs_bench::{banner, run_sfs, save, section, turnarounds_ms, Sweep};
use sfs_core::SfsConfig;
use sfs_metrics::{cdf_chart, CdfReport};
use sfs_workload::WorkloadSpec;

const CORES: usize = 16;

fn main() {
    let n = sfs_bench::n_requests(10_000);
    let seed = sfs_bench::seed();
    banner(
        "Fig. 9",
        "adaptive vs fixed FILTER time slices @80% load",
        n,
        seed,
    );

    let variants: Vec<(String, SfsConfig)> = vec![
        ("SFS".into(), SfsConfig::new(CORES)),
        ("SFS 50".into(), SfsConfig::new(CORES).with_fixed_slice(50)),
        (
            "SFS 100".into(),
            SfsConfig::new(CORES).with_fixed_slice(100),
        ),
        (
            "SFS 200".into(),
            SfsConfig::new(CORES).with_fixed_slice(200),
        ),
    ];
    let mut sweep = Sweep::new("fig09", seed);
    for (label, cfg) in variants {
        sweep.scenario(label, move |_| {
            let w = WorkloadSpec::azure_sampled(n, seed)
                .with_load(CORES, 0.8)
                .generate();
            run_sfs(cfg, CORES, &w)
        });
    }
    let results = sweep.run();

    let mut report = CdfReport::new("duration_ms");
    let mut chart: Vec<(String, Vec<f64>)> = Vec::new();
    for r in &results {
        let durs = turnarounds_ms(&r.value.outcomes);
        println!(
            "{:>8}: mean {:.1} ms, demoted {}, recalcs {}",
            r.label,
            r.value.mean_turnaround_ms(),
            r.value.telemetry.demoted,
            r.value.telemetry.slice_recalcs
        );
        report.push(r.label.clone(), durs.clone());
        chart.push((r.label.clone(), durs));
    }

    section("duration CDF quantiles (ms)");
    println!("{}", report.to_markdown());
    save("fig09_timeslice_cdf.csv", &report.to_csv());

    section("duration CDF (log-x)");
    let refs: Vec<(&str, &[f64])> = chart
        .iter()
        .map(|(l, v)| (l.as_str(), v.as_slice()))
        .collect();
    println!("{}", cdf_chart(&refs, 64, 16));
}
