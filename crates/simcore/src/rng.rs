//! Seeded, reproducible randomness for workload generation.
//!
//! Every stochastic component (duration sampling, IAT generation, I/O jitter)
//! draws from a [`SimRng`] derived from an experiment-level master seed, so a
//! bench binary re-run with the same seed regenerates the exact same figure.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Exp, LogNormal, Uniform};

/// A deterministic RNG wrapper with distribution helpers used across the
/// workload generator and scheduler substrates.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Construct from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child RNG for a named sub-component.
    ///
    /// Mixes the label into the stream so two components seeded from the same
    /// parent do not observe correlated draws.
    pub fn derive(&mut self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::seed_from_u64(self.inner.gen::<u64>() ^ h)
    }

    /// Uniform draw in `[0, 1)` (half-open unit interval).
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in the half-open range `lo..hi`. Requires `lo < hi`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "uniform range must be non-empty");
        Uniform::new(lo, hi).sample(&mut self.inner)
    }

    /// Uniform integer draw in the inclusive range `lo..=hi`.
    #[inline]
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.inner.gen_range(lo..=hi)
    }

    /// Exponential draw with the given mean (used for Poisson inter-arrivals).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential mean must be positive");
        Exp::new(1.0 / mean)
            .expect("valid exponential rate")
            .sample(&mut self.inner)
    }

    /// Log-normal draw parameterised by the *underlying* normal's mu/sigma.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        LogNormal::new(mu, sigma)
            .expect("valid lognormal params")
            .sample(&mut self.inner)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Pick an index from a discrete probability table (weights need not sum
    /// to exactly 1; the last bucket absorbs rounding residue).
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().sum();
        let mut x = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Access the underlying `rand` RNG for ad-hoc use.
    pub fn raw(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let xa: Vec<u64> = (0..16).map(|_| a.unit().to_bits()).collect();
        let xb: Vec<u64> = (0..16).map(|_| b.unit().to_bits()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn derived_children_are_independent_and_deterministic() {
        let mut p1 = SimRng::seed_from_u64(7);
        let mut p2 = SimRng::seed_from_u64(7);
        let mut c1 = p1.derive("durations");
        let mut c2 = p2.derive("durations");
        assert_eq!(c1.unit().to_bits(), c2.unit().to_bits());

        let mut p3 = SimRng::seed_from_u64(7);
        let mut d = p3.derive("iat");
        // Different label, same parent state: streams should differ.
        let mut p4 = SimRng::seed_from_u64(7);
        let mut e = p4.derive("durations");
        assert_ne!(d.unit().to_bits(), e.unit().to_bits());
    }

    #[test]
    fn exponential_mean_is_approximately_right() {
        let mut r = SimRng::seed_from_u64(3);
        let n = 200_000;
        let mean = 25.0;
        let total: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let observed = total / n as f64;
        assert!(
            (observed - mean).abs() / mean < 0.02,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn pick_weighted_respects_probabilities() {
        let mut r = SimRng::seed_from_u64(9);
        let weights = [0.5, 0.3, 0.2];
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[r.pick_weighted(&weights)] += 1;
        }
        for (c, w) in counts.iter().zip(weights.iter()) {
            let frac = *c as f64 / n as f64;
            assert!(
                (frac - w).abs() < 0.02,
                "bucket frequency {frac} deviates from weight {w}"
            );
        }
    }

    #[test]
    fn uniform_bounds_hold() {
        let mut r = SimRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.uniform(10.0, 100.0);
            assert!((10.0..100.0).contains(&x));
            let y = r.uniform_u64(3, 7);
            assert!((3..=7).contains(&y));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range p is clamped, not a panic.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }
}
