//! Extension: multi-server offloading of long functions (the paper's
//! stated future work, §VIII-A): a global dispatcher steering predicted
//! long functions across an SFS cluster, with live load feedback and a
//! warm-container affinity model (see `sfs_faas::cluster`).
//!
//! For the full hosts × placement × load scaling study, see the
//! `cluster_scale` harness; this one compares the placement policies at
//! one saturated 4-host operating point.

use sfs_bench::{banner, save, section, Sweep};
use sfs_faas::{Cluster, Placement};
use sfs_metrics::MarkdownTable;
use sfs_simcore::{Samples, SimDuration};
use sfs_workload::{WorkloadSpec, LONG_THRESHOLD_MS};

const HOSTS: usize = 4;
const CORES_PER_HOST: usize = 8;

/// `n/a` when the population is empty (a small run can have no longs).
fn fmt_mean(mean: Option<f64>) -> String {
    mean.map_or_else(|| "n/a".to_string(), |m| format!("{m:.1}"))
}

fn main() {
    let n = sfs_bench::n_requests(10_000);
    let seed = sfs_bench::seed();
    banner(
        "Extension: cluster",
        "global long-function offloading across SFS hosts",
        n,
        seed,
    );

    let cluster = Cluster::new(HOSTS, CORES_PER_HOST).with_affinity(
        SimDuration::from_millis(10_000),
        SimDuration::from_millis(50),
    );
    let mut sweep = Sweep::new("extension_cluster", seed);
    for p in Placement::ALL {
        let cluster = cluster.clone();
        sweep.scenario(p.name(), move |_| {
            let w = WorkloadSpec::azure_sampled(n, seed)
                .with_load(HOSTS * CORES_PER_HOST, 1.0)
                .generate();
            // Host parallelism is the sweep's inner dimension; trials
            // here run on one worker each (5 trials × H hosts).
            cluster.run_with_threads(p, &cluster.sfs, &w, 1)
        });
    }
    let results = sweep.run();

    let mut table = MarkdownTable::new(&[
        "placement",
        "short mean (ms)",
        "long mean (ms)",
        "long p99 (ms)",
        "cold starts",
        "per-host counts",
    ]);
    for r in &results {
        let run = &r.value;
        let longs: Vec<f64> = run
            .outcomes
            .iter()
            .filter(|o| o.ideal.as_millis_f64() >= LONG_THRESHOLD_MS)
            .map(|o| o.turnaround.as_millis_f64())
            .collect();
        let long_p99 = (!longs.is_empty()).then(|| Samples::from_vec(longs).percentile(99.0));
        table.row(&[
            r.label.clone(),
            fmt_mean(run.short_mean_ms()),
            fmt_mean(run.long_mean_ms()),
            fmt_mean(long_p99),
            format!("{}", run.cold_starts),
            format!("{:?}", run.per_host),
        ]);
    }

    section("placement comparison at 100% cluster load");
    println!("{}", table.to_markdown());
    save("extension_cluster.csv", &table.to_csv());
    println!(
        "Reading: long-to-lightest should trim the long-function mean/p99\n\
         relative to round-robin without hurting the short population —\n\
         the mitigation the paper sketches for SFS's long-function penalty.\n\
         consistent-hash shows the locality/balance trade: far fewer cold\n\
         starts, at some queueing cost next to join-shortest-queue."
    );
}
