//! Region-scale study: regions × placement × faults on the multi-region
//! fleet (`sfs_faas::fleet`) — the front door, autoscaler, and fault
//! injector composed over the live-dispatch cluster.
//!
//! Two sweeps:
//!
//! 1. **placement × fleet size** at 90% offered load, fault-free —
//!    request count scales with the host total (the 4-region × 16-host
//!    point runs the full `SFS_BENCH_REQUESTS`, default 100 000), so
//!    per-host pressure is comparable across fleet sizes;
//! 2. **fault scenarios** on a 2-region × 16-host fleet under
//!    join-shortest-queue: fault-free, crashes, stragglers, a correlated
//!    AZ outage, and the full mix — every request attributed
//!    completed / shed / lost (conservation is asserted, not assumed).
//!
//! Execution units fan out in parallel (`--threads N`, or
//! `SFS_BENCH_THREADS`; default: all cores). Every number printed or
//! saved is **bit-identical for any thread count** — the front door
//! routes sequentially, unit simulations land in index-ordered slots —
//! so `fleet_scale --threads 8 > a; fleet_scale --threads 1 > b;
//! diff a b` is empty even with faults enabled. The CI `fleet-matrix`
//! job enforces exactly that diff.

use sfs_bench::{banner, save, section};
use sfs_faas::{FaultSpec, Fleet, FleetRun, Placement};
use sfs_metrics::MarkdownTable;
use sfs_simcore::{parallel, SimDuration, SimTime};
use sfs_workload::{Workload, WorkloadSpec};

const CORES_PER_HOST: usize = 4;
/// Warm-container keep-alive window (ms) of the affinity model.
const KEEP_ALIVE_MS: u64 = 10_000;
/// Cold-start CPU penalty (ms).
const COLD_START_MS: u64 = 50;

fn fleet(regions: usize, hosts: usize) -> Fleet {
    Fleet::new(regions, hosts, CORES_PER_HOST).with_affinity(
        SimDuration::from_millis(KEEP_ALIVE_MS),
        SimDuration::from_millis(COLD_START_MS),
    )
}

/// Stats computed once per run and shared by the table and the CSV.
struct RunStats {
    mean_ms: Option<f64>,
    makespan_s: f64,
    crashes: u64,
    boots: u64,
    warm_host_s: f64,
}

impl RunStats {
    fn of(run: &FleetRun) -> RunStats {
        assert!(
            run.conservation_holds(),
            "conservation violated: {} completed + {} shed + {} lost != {} requests",
            run.outcomes.len(),
            run.shed.len(),
            run.lost.len(),
            run.requests,
        );
        let makespan_s = run
            .outcomes
            .iter()
            .map(|o| o.finished)
            .max()
            .unwrap_or(SimTime::ZERO)
            .since(SimTime::ZERO)
            .as_millis_f64()
            / 1e3;
        RunStats {
            mean_ms: run.mean_turnaround_ms(),
            makespan_s,
            crashes: run.per_region.iter().map(|r| r.crashes).sum(),
            boots: run
                .per_region
                .iter()
                .map(|r| r.boots + r.reactivations)
                .sum(),
            warm_host_s: run.per_region.iter().map(|r| r.warm_host_ms).sum::<f64>() / 1e3,
        }
    }
}

fn fmt_mean(mean: Option<f64>) -> String {
    mean.map_or_else(|| "n/a".to_string(), |m| format!("{m:.1}"))
}

const COLUMNS: [&str; 8] = [
    "completed",
    "shed",
    "lost",
    "mean (ms)",
    "cold starts",
    "spilled",
    "scale-ups",
    "makespan (s)",
];

fn row(table: &mut MarkdownTable, head: &[String], run: &FleetRun, stats: &RunStats) {
    let mut cells = head.to_vec();
    cells.extend([
        format!("{}", run.outcomes.len()),
        format!("{}", run.shed.len()),
        format!("{}", run.lost.len()),
        fmt_mean(stats.mean_ms),
        format!("{}", run.cold_starts),
        format!("{}", run.spilled),
        format!("{}", stats.boots),
        format!("{:.2}", stats.makespan_s),
    ]);
    table.row(&cells);
}

fn workload_for(regions: usize, hosts: usize, n_full: usize, load: f64, seed: u64) -> Workload {
    // Scale the request count with the host total so per-host pressure
    // stays comparable: the 4x16 point carries the full budget.
    let total_hosts = regions * hosts;
    let n = (n_full * total_hosts / 64).max(total_hosts);
    WorkloadSpec::azure_sampled(n, seed)
        .with_load(total_hosts * CORES_PER_HOST, load)
        .generate()
}

fn main() {
    let threads = parse_threads();
    let n_full = sfs_bench::n_requests(100_000);
    let seed = sfs_bench::seed();
    banner(
        "fleet_scale",
        "regions x placement x faults on the multi-region fleet",
        n_full,
        seed,
    );
    // Thread count goes to stderr only: stdout must stay byte-identical
    // across `--threads` values.
    eprintln!("[fleet_scale: execution units fan out over {threads} worker thread(s)]");

    let csv_mean = |m: Option<f64>| m.map_or_else(String::new, |v| format!("{v}"));
    let mut csv = String::from(
        "sweep,regions,hosts,placement,faults,completed,shed,lost,mean_ms,cold_starts,\
         redispatches,spilled,crashes,scale_ups,warm_host_s,makespan_s\n",
    );
    let mut push_csv = |sweep: &str,
                        regions: usize,
                        hosts: usize,
                        faults: &str,
                        run: &FleetRun,
                        stats: &RunStats| {
        csv.push_str(&format!(
            "{sweep},{regions},{hosts},{},{faults},{},{},{},{},{},{},{},{},{},{},{}\n",
            run.placement.name(),
            run.outcomes.len(),
            run.shed.len(),
            run.lost.len(),
            csv_mean(stats.mean_ms),
            run.cold_starts,
            run.redispatches,
            run.spilled,
            stats.crashes,
            stats.boots,
            stats.warm_host_s,
            stats.makespan_s,
        ));
    };

    section("placement x fleet size at 90% offered load (fault-free)");
    let mut cols = vec!["fleet", "placement"];
    cols.extend_from_slice(&COLUMNS);
    let mut table = MarkdownTable::new(&cols);
    for (regions, hosts) in [(2usize, 4usize), (2, 16), (4, 16)] {
        let w = workload_for(regions, hosts, n_full, 0.9, seed);
        let f = fleet(regions, hosts);
        for p in Placement::ALL {
            let run = f.run_with_threads(p, &f.sfs, &w, threads);
            let stats = RunStats::of(&run);
            row(
                &mut table,
                &[format!("{regions}x{hosts}"), p.name().to_string()],
                &run,
                &stats,
            );
            push_csv("size", regions, hosts, "none", &run, &stats);
        }
    }
    println!("{}", table.to_markdown());

    section("fault scenarios on a 2-region x 16-host fleet (join-shortest-queue)");
    let mut cols = vec!["faults"];
    cols.extend_from_slice(&COLUMNS);
    let mut table = MarkdownTable::new(&cols);
    let w = workload_for(2, 16, n_full, 0.9, seed);
    for spec in [
        "none",
        "crash:4",
        "straggler:4",
        "outage:1",
        "crash:4+straggler:4+outage:1",
    ] {
        let mut f = fleet(2, 16);
        if spec != "none" {
            f = f.with_faults(FaultSpec::parse(spec).expect("literal fault spec"));
        }
        let run = f.run_with_threads(Placement::JoinShortestQueue, &f.sfs, &w, threads);
        let stats = RunStats::of(&run);
        row(&mut table, &[spec.to_string()], &run, &stats);
        push_csv("faults", 2, 16, spec, &run, &stats);
    }
    println!("{}", table.to_markdown());

    save("fleet_scale.csv", &csv);
    println!(
        "Reading: the front door keeps per-region pressure level (spilled\n\
         counts the requests routed past their cheapest-RTT home), the\n\
         autoscaler's warm parking converts queue-depth slack into cold\n\
         starts avoided, and every faulted run still conserves requests:\n\
         completed + shed + lost == offered, with crashes surfacing as\n\
         re-dispatches (bounded by the budget) rather than silent loss.\n\
         All of it is bit-identical at any --threads value."
    );
}

/// `--threads N` beats `SFS_BENCH_THREADS`, which beats the core count.
fn parse_threads() -> usize {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let mut threads = None;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" | "-t" => {
                let v = args.get(i + 1).cloned().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(t) if t >= 1 => threads = Some(t),
                    _ => {
                        eprintln!("fleet_scale: --threads needs a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--help" | "-h" => {
                println!("usage: fleet_scale [--threads N]");
                println!("  --threads N   unit-simulation worker threads (default: autodetect)");
                std::process::exit(0);
            }
            other => {
                eprintln!("fleet_scale: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    threads.unwrap_or_else(parallel::default_threads)
}
