//! I/O-aware scheduling demo (paper §V-D / Fig. 11): a workload where 75%
//! of functions begin with a 10–100 ms I/O operation, run under I/O-aware
//! SFS vs I/O-oblivious SFS.
//!
//! ```text
//! cargo run --release --example io_functions
//! ```

use sfs_repro::metrics::MarkdownTable;
use sfs_repro::sched::MachineParams;
use sfs_repro::sfs::{RunOutcome, SfsConfig, SfsController, Sim};
use sfs_repro::simcore::Samples;
use sfs_repro::workload::WorkloadSpec;

const CORES: usize = 8;

/// Downsizing knob so CI can smoke-run every example quickly.
fn n_requests(default: usize) -> usize {
    std::env::var("SFS_EXAMPLE_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let mut spec = WorkloadSpec::azure_sampled(n_requests(2_000), 23);
    spec.io_fraction = 0.75;
    spec.io_range_ms = (10.0, 100.0);
    let workload = spec.with_load(CORES, 0.8).generate();
    let with_io = workload
        .requests
        .iter()
        .filter(|r| r.injected_io_ms.is_some())
        .count();
    println!(
        "workload: {} requests, {} with a leading I/O op\n",
        workload.len(),
        with_io
    );

    let aware = Sim::on(MachineParams::linux(CORES))
        .workload(&workload)
        .controller(SfsController::new(SfsConfig::new(CORES)))
        .run();
    let oblivious = Sim::on(MachineParams::linux(CORES))
        .workload(&workload)
        .controller(SfsController::new(SfsConfig::new(CORES).io_oblivious()))
        .run();

    let mut t = MarkdownTable::new(&["metric", "I/O-aware SFS", "I/O-oblivious SFS"]);
    t.row(&[
        "mean turnaround (ms)".into(),
        format!("{:.1}", aware.mean_turnaround_ms()),
        format!("{:.1}", oblivious.mean_turnaround_ms()),
    ]);
    let p99 = |r: &RunOutcome| {
        let mut s = Samples::from_vec(
            r.outcomes
                .iter()
                .map(|o| o.turnaround.as_millis_f64())
                .collect(),
        );
        s.percentile(99.0)
    };
    t.row(&[
        "p99 turnaround (ms)".into(),
        format!("{:.1}", p99(&aware)),
        format!("{:.1}", p99(&oblivious)),
    ]);
    let blocks = |r: &RunOutcome| -> u32 { r.outcomes.iter().map(|o| o.io_blocks).sum() };
    t.row(&[
        "I/O blocks detected".into(),
        format!("{}", blocks(&aware)),
        format!("{}", blocks(&oblivious)),
    ]);
    t.row(&[
        "demoted on slice expiry".into(),
        format!("{}", aware.telemetry.demoted),
        format!("{}", oblivious.telemetry.demoted),
    ]);
    t.row(&[
        "status polls performed".into(),
        format!("{}", aware.telemetry.polls),
        format!("{}", oblivious.telemetry.polls),
    ]);
    println!("{}", t.to_markdown());

    println!(
        "The oblivious variant burns FILTER slices on sleeping functions and\n\
         demotes them to CFS ({} demotions vs {}); the aware variant detects\n\
         the block within one 4 ms poll and re-enqueues the function with its\n\
         unused slice.",
        oblivious.telemetry.demoted, aware.telemetry.demoted
    );
}
