//! Table I: probability distribution of function duration ranges and the
//! corresponding `fib` N values, verified against a generated workload.

use sfs_bench::{banner, section, Sweep};
use sfs_metrics::MarkdownTable;
use sfs_simcore::SimRng;
use sfs_workload::{Table1Sampler, TABLE1};

fn main() {
    let n = sfs_bench::n_requests(200_000);
    let seed = sfs_bench::seed();
    banner(
        "Table I",
        "duration-range probabilities and fib N mapping",
        n,
        seed,
    );

    let mut sweep = Sweep::new("table1", seed);
    sweep.scenario("bucket frequencies", move |_| {
        let sampler = Table1Sampler::new();
        let mut rng = SimRng::seed_from_u64(seed);
        let mut counts = vec![0usize; TABLE1.len()];
        for _ in 0..n {
            let (_, idx) = sampler.sample_with_bucket(&mut rng);
            counts[idx] += 1;
        }
        counts
    });
    let counts = sweep.run().remove(0).value;
    let total_w: f64 = TABLE1.iter().map(|b| b.probability_pct).sum();

    let mut t = MarkdownTable::new(&[
        "paper probability",
        "duration range",
        "fib N",
        "renormalised target",
        "measured frequency",
    ]);
    for (b, &c) in TABLE1.iter().zip(counts.iter()) {
        let range = if b.range_ms.1 >= 3500.0 {
            format!(">= {:.0} ms", b.range_ms.0)
        } else {
            format!("{:.0}-{:.0} ms", b.range_ms.0, b.range_ms.1)
        };
        let fib = if b.fib_n.0 == b.fib_n.1 {
            format!("{}", b.fib_n.0)
        } else {
            format!("{}-{}", b.fib_n.0, b.fib_n.1)
        };
        t.row(&[
            format!("{:.1}%", b.probability_pct),
            range,
            fib,
            format!("{:.3}", b.probability_pct / total_w),
            format!("{:.3}", c as f64 / n as f64),
        ]);
    }
    println!("{}", t.to_markdown());
    sfs_bench::save("table1_durations.csv", &t.to_csv());

    section("derived quantities");
    let sampler = Table1Sampler::new();
    println!("analytic mean duration : {:.1} ms", sampler.mean_ms());
    println!(
        "short (<1550 ms) share : {:.1}% (paper: ~83%)",
        sfs_workload::table1::short_fraction() * 100.0
    );
}
