//! SMP tunables and the periodic load balancer.
//!
//! A real multicore kernel does not leave wakeup placement as the only
//! cross-core mechanism: `scheduler_tick` periodically walks the runqueues
//! and pulls work from the busiest CPU toward the idlest one, paying a
//! migration cost (cache/TLB refill) for every task it moves. SFS coexists
//! with exactly that machinery on a live host, so the simulated
//! [`Machine`](crate::Machine) models it too:
//!
//! * **Balance tick** — every [`SmpParams::balance_interval`] the machine
//!   compares per-core queued depths and migrates one task from the busiest
//!   to the idlest CFS runqueue when the gap reaches
//!   [`SmpParams::balance_threshold`] (one migration per tick, like the
//!   kernel's conservative `load_balance` envelope).
//! * **Migration penalty** — a balance-migrated task pays
//!   [`SmpParams::migration_cost`] of extra dispatch latency the next time
//!   it gets a CPU (its cache footprint is gone).
//! * **Cache-affinity cost** — any task resuming on a different core than
//!   it last executed on pays [`SmpParams::affinity_cost`] at dispatch,
//!   whatever moved it (wakeup placement, idle stealing, or the balancer).
//!
//! All three default to **zero/off**: a default-constructed machine is
//! bit-exact with the pre-SMP model at any core count, which is what the
//! golden suite and `smp_single_core_diff` lock.

use sfs_simcore::SimDuration;

/// SMP behaviour knobs for [`MachineParams`](crate::MachineParams).
///
/// The all-zero [`Default`] disables every SMP mechanism, reproducing the
/// pre-SMP machine exactly; [`SmpParams::balanced`] is the standard "on"
/// configuration the SMP bench scenarios use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmpParams {
    /// Period of the load-balance tick. `ZERO` disables balancing.
    pub balance_interval: SimDuration,
    /// Minimum queued-depth gap (busiest − idlest CFS runqueue) that
    /// triggers a migration. Below the threshold the tick is a pure scan.
    /// A threshold under 2 is meaningless (moving a task across a gap of 1
    /// just inverts the imbalance) and is clamped to 2 by the balancer.
    pub balance_threshold: u64,
    /// Extra dispatch latency a balance-migrated task pays on its next
    /// dispatch (cold cache after a forced move). Charged once per
    /// migration, on top of the ordinary context-switch cost.
    pub migration_cost: SimDuration,
    /// Extra dispatch latency any task pays when it resumes on a different
    /// core than it last executed on. `ZERO` disables the model. On a
    /// single-core machine this never fires (there is no other core).
    pub affinity_cost: SimDuration,
}

impl Default for SmpParams {
    fn default() -> Self {
        SmpParams {
            balance_interval: SimDuration::ZERO,
            balance_threshold: 2,
            migration_cost: SimDuration::ZERO,
            affinity_cost: SimDuration::ZERO,
        }
    }
}

impl SmpParams {
    /// True iff the periodic balance tick is enabled.
    pub fn balancing(&self) -> bool {
        !self.balance_interval.is_zero()
    }

    /// The standard "SMP on" configuration used by the SMP bench
    /// scenarios: balance every `interval`, threshold 2, with the given
    /// migration and affinity costs.
    pub fn balanced(
        interval: SimDuration,
        migration_cost: SimDuration,
        affinity_cost: SimDuration,
    ) -> SmpParams {
        SmpParams {
            balance_interval: interval,
            balance_threshold: 2,
            migration_cost,
            affinity_cost,
        }
    }
}

/// Pick the (busiest, idlest) pair of cores by queued depth, if the gap
/// reaches `threshold` (clamped to ≥ 2). Ties break on the lowest core
/// index for both ends — the deterministic contract every balance decision
/// relies on. Returns `None` when the load is already balanced.
pub fn pick_imbalance(depths: &[u64], threshold: u64) -> Option<(usize, usize)> {
    if depths.len() < 2 {
        return None;
    }
    let threshold = threshold.max(2);
    let mut busiest = 0usize;
    let mut idlest = 0usize;
    for (i, &d) in depths.iter().enumerate().skip(1) {
        if d > depths[busiest] {
            busiest = i;
        }
        if d < depths[idlest] {
            idlest = i;
        }
    }
    if depths[busiest] >= depths[idlest] + threshold {
        Some((busiest, idlest))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fully_off() {
        let p = SmpParams::default();
        assert!(!p.balancing());
        assert!(p.migration_cost.is_zero());
        assert!(p.affinity_cost.is_zero());
    }

    #[test]
    fn imbalance_requires_threshold_gap() {
        assert_eq!(pick_imbalance(&[3, 1], 2), Some((0, 1)));
        assert_eq!(pick_imbalance(&[2, 1], 2), None, "gap of 1 never migrates");
        assert_eq!(pick_imbalance(&[5, 5, 5], 2), None, "balanced load");
        assert_eq!(pick_imbalance(&[0, 0], 2), None, "all idle");
        assert_eq!(pick_imbalance(&[7], 2), None, "single core");
        assert_eq!(pick_imbalance(&[], 2), None);
    }

    #[test]
    fn threshold_is_clamped_to_two() {
        // threshold 0/1 would migrate across a gap of 1, which only swaps
        // which core is the busy one; the clamp forbids it.
        assert_eq!(pick_imbalance(&[2, 1], 0), None);
        assert_eq!(pick_imbalance(&[2, 1], 1), None);
        assert_eq!(pick_imbalance(&[3, 1], 1), Some((0, 1)));
        // Larger thresholds are honoured as given.
        assert_eq!(pick_imbalance(&[4, 1], 4), None);
        assert_eq!(pick_imbalance(&[5, 1], 4), Some((0, 1)));
    }

    #[test]
    fn ties_break_on_lowest_core_index() {
        assert_eq!(pick_imbalance(&[4, 4, 0, 0], 2), Some((0, 2)));
        assert_eq!(pick_imbalance(&[0, 4, 4, 0], 2), Some((1, 0)));
    }
}
