//! Ablation: single global queue (the paper's design, §VI) vs static
//! per-worker queues.
//!
//! The paper argues the global queue "guarantees natural work conservation
//! with good load balancing" and cites per-core-queue downsides (load
//! imbalance, core under-utilisation). This harness quantifies them on the
//! standalone workload at 90% load.

use sfs_bench::{banner, run_sfs, save, section, turnarounds_ms, Sweep};
use sfs_core::SfsConfig;
use sfs_metrics::{cdf_chart, PercentileTable};
use sfs_workload::WorkloadSpec;

const CORES: usize = 16;

fn main() {
    let n = sfs_bench::n_requests(10_000);
    let seed = sfs_bench::seed();
    banner(
        "Ablation",
        "global queue vs per-worker queues @90% load",
        n,
        seed,
    );

    let gen = move || {
        WorkloadSpec::azure_sampled(n, seed)
            .with_load(CORES, 0.9)
            .generate()
    };
    let mut sweep = Sweep::new("ablation_queues", seed);
    sweep.scenario("global queue", move |_| {
        run_sfs(SfsConfig::new(CORES), CORES, &gen())
    });
    sweep.scenario("per-worker queues", move |_| {
        run_sfs(SfsConfig::new(CORES).per_worker_queues(), CORES, &gen())
    });
    let results = sweep.run();
    let (global, per) = (&results[0].value, &results[1].value);

    let g = turnarounds_ms(&global.outcomes);
    let p = turnarounds_ms(&per.outcomes);

    section("percentiles (ms)");
    let mut t = PercentileTable::new();
    t.push("global queue", g.clone());
    t.push("per-worker queues", p.clone());
    println!("{}", t.to_markdown());
    save("ablation_queues.csv", &t.to_csv());

    println!(
        "mean: global {:.1} ms vs per-worker {:.1} ms",
        global.mean_turnaround_ms(),
        per.mean_turnaround_ms()
    );
    println!(
        "peak queue delay: global {:.2}s vs per-worker {:.2}s",
        global.telemetry.queue_delay_series.max_value(),
        per.telemetry.queue_delay_series.max_value()
    );

    section("duration CDF (log-x)");
    println!(
        "{}",
        cdf_chart(
            &[("global", g.as_slice()), ("per-worker", p.as_slice())],
            64,
            14
        )
    );
}
