//! Differential suite: [`QuantileSketch`] against exact [`Samples`]
//! quantiles over the distribution shapes the simulator actually produces —
//! uniform, heavy-tailed Pareto, and the multimodal Azure-replay shape
//! (a mixture of well-separated duration modes plus a long tail).
//!
//! The contract under test: for every reported quantile, the sketch's value
//! `v̂` satisfies `|v̂ − v| ≤ α·v` against the exact value `v`, with a hair
//! of slack for the nearest-rank discretisation at extreme quantiles.

use sfs_simcore::{QuantileSketch, Samples, SimRng};

const QUANTILES: [f64; 9] = [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999, 0.9999];

/// Check the relative-error contract of `sketch` vs exact over `values`.
fn assert_within_contract(name: &str, values: Vec<f64>, alpha: f64) {
    let mut sketch = QuantileSketch::new(alpha);
    for &v in &values {
        sketch.push(v);
    }
    let mut exact = Samples::from_vec(values);
    assert_eq!(sketch.count(), exact.len() as u64);
    // Small slack over alpha: the exact side uses nearest-rank, so at tail
    // quantiles the "true" value itself is one sample wide.
    let tol = alpha * 1.10;
    for &q in &QUANTILES {
        let (e, s) = (exact.quantile(q), sketch.quantile(q));
        assert!(
            (s - e).abs() <= tol * e.abs().max(1e-12),
            "{name} q={q}: sketch {s} vs exact {e} (tol {tol})"
        );
    }
    // Extremes are exact: the sketch tracks true min/max.
    assert_eq!(sketch.min(), exact.quantile(0.0));
    assert_eq!(sketch.max(), exact.quantile(1.0));
}

#[test]
fn uniform_distribution_within_bound() {
    for seed in [1u64, 7, 42] {
        let mut rng = SimRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..50_000).map(|_| rng.uniform(0.1, 1_000.0)).collect();
        assert_within_contract("uniform", values, 0.01);
    }
}

#[test]
fn pareto_heavy_tail_within_bound() {
    // Heavy tails are the hard case for rank-error sketches and the easy
    // case for relative-error ones — exactly why the stats pipeline uses
    // the latter: p99.99 of a Pareto(50, 1.1) spans orders of magnitude.
    for seed in [3u64, 11] {
        let mut rng = SimRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..50_000).map(|_| rng.pareto(50.0, 1.1)).collect();
        assert_within_contract("pareto", values, 0.01);
    }
}

#[test]
fn azure_replay_shape_within_bound() {
    // The Table-I-like shape: multimodal short-duration bulk (a few fixed
    // modes with jitter) plus a ~16% long tail around 1.5–60 s.
    let mut rng = SimRng::seed_from_u64(13);
    let modes = [1.0, 10.0, 50.0, 150.0, 400.0];
    let values: Vec<f64> = (0..80_000)
        .map(|_| {
            if rng.chance(0.164) {
                rng.uniform(1_550.0, 60_000.0)
            } else {
                let m = modes[rng.uniform_u64(0, 4) as usize];
                m * rng.uniform(0.8, 1.25)
            }
        })
        .collect();
    assert_within_contract("azure-shape", values, 0.01);
}

#[test]
fn coarser_alpha_still_honours_its_own_bound() {
    let mut rng = SimRng::seed_from_u64(23);
    let values: Vec<f64> = (0..30_000).map(|_| rng.lognormal(3.0, 1.5)).collect();
    assert_within_contract("lognormal-alpha5", values, 0.05);
}

#[test]
fn memory_stays_bounded_while_exact_grows() {
    // The point of the sketch: bucket count is a function of the value
    // range and alpha, not of the sample count.
    let mut rng = SimRng::seed_from_u64(31);
    let mut sketch = QuantileSketch::new(0.01);
    let mut at_100k = 0usize;
    for i in 0..1_000_000u64 {
        sketch.push(rng.pareto(1.0, 1.5));
        if i == 100_000 {
            at_100k = sketch.bucket_count();
        }
    }
    let final_buckets = sketch.bucket_count();
    assert!(
        final_buckets < 3_000,
        "bucket count {final_buckets} should stay small"
    );
    // 10x more samples added at most a sliver of new buckets (range edges).
    assert!(
        final_buckets < at_100k + 400,
        "buckets kept growing: {at_100k} -> {final_buckets}"
    );
    assert_eq!(sketch.count(), 1_000_000);
}

#[test]
fn merged_shards_match_single_pass_exactly() {
    // Sharded streaming (the cluster harness pattern): merging per-shard
    // sketches must yield byte-identical quantiles to one big sketch.
    let mut rng = SimRng::seed_from_u64(37);
    let values: Vec<f64> = (0..40_000).map(|_| rng.exponential(25.0)).collect();
    let mut whole = QuantileSketch::new(0.01);
    let mut shards: Vec<QuantileSketch> = (0..4).map(|_| QuantileSketch::new(0.01)).collect();
    for (i, &v) in values.iter().enumerate() {
        whole.push(v);
        shards[i % 4].push(v);
    }
    let mut merged = shards.remove(0);
    for s in &shards {
        merged.merge(s);
    }
    assert_eq!(merged.count(), whole.count());
    for &q in &QUANTILES {
        assert_eq!(
            merged.quantile(q).to_bits(),
            whole.quantile(q).to_bits(),
            "merge must land in identical buckets (q={q})"
        );
    }
}
