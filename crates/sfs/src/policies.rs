//! Stock [`Controller`] implementations beyond SFS itself.
//!
//! * [`KernelOnly`] — dispatch every request under one kernel policy and
//!   let the OS do everything (the paper's CFS/FIFO/RR baselines; on an
//!   SRTF-mode machine, the offline oracle).
//! * [`Ideal`] — the infinite-resource lower bound (§IV-B), analytic.
//! * [`HistoryPriority`] — a history-informed static-priority strawman:
//!   spawn-time FIFO-vs-CFS classification from per-app observed CPU
//!   history, with no slicing, no polling, and no overload fallback.
//! * [`UserMlfq`] — a user-space multi-level feedback queue: demote
//!   processes to higher `nice` levels as their consumed CPU grows,
//!   approximating SRTF with nothing but `/proc` polling and renicing.
//!
//! The last two are controllers the pre-`Sim` design made impractical:
//! each would have needed its own hand-rolled simulator run path.

use std::collections::BTreeMap;

use sfs_sched::{Notification, Pid, Policy, ProcState};
use sfs_simcore::{SimDuration, SimTime};
use sfs_workload::{AppKind, Request, Workload};

use crate::sim::{Controller, MachineView, Telemetry};
use crate::stats::RequestOutcome;

/// Dispatch every request under one fixed kernel policy and never touch it
/// again: the pure-kernel comparators of Fig. 2 and the "CFS" series of
/// every evaluation figure.
///
/// `KernelOnly(Policy::NORMAL)` on a [`sfs_sched::KernelPolicyKind::Srtf`] machine
/// is the offline SRTF oracle (the machine ignores policies in that mode).
#[derive(Debug, Clone, Copy)]
pub struct KernelOnly(pub Policy);

impl Controller for KernelOnly {
    fn name(&self) -> &'static str {
        match self.0 {
            Policy::Fifo { .. } => "fifo",
            Policy::Rr { .. } => "rr",
            Policy::Normal { .. } => "kernel",
        }
    }

    fn dispatch_policy(&mut self, _req: &Request) -> Policy {
        self.0
    }
}

/// The IDEAL scenario: infinite resources, zero contention. Turnaround is
/// the spec's isolated duration by construction; no machine is simulated
/// ([`Controller::analytic`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ideal;

impl Controller for Ideal {
    fn name(&self) -> &'static str {
        "ideal"
    }

    fn analytic(&self, workload: &Workload) -> Option<Vec<RequestOutcome>> {
        Some(
            workload
                .requests
                .iter()
                .map(|r| {
                    let ideal = r.spec.ideal_duration();
                    RequestOutcome {
                        id: r.id,
                        arrival: r.arrival,
                        finished: r.arrival + ideal,
                        turnaround: ideal,
                        ideal,
                        cpu_demand: r.spec.cpu_demand(),
                        rte: 1.0,
                        ctx_switches: 0,
                        migrations: 0,
                        queue_delay: SimDuration::ZERO,
                        demoted: false,
                        offloaded: false,
                        filter_rounds: 0,
                        io_blocks: 0,
                    }
                })
                .collect(),
        )
    }
}

/// A history-informed static-priority strawman.
///
/// The scheduler SFS is implicitly compared against in §IV: keep per-app
/// statistics of *observed* CPU consumption (exactly what a user-space
/// scheduler can read from `/proc` at completion), predict the next
/// invocation of an app as short or long from its historical mean, and
/// dispatch predicted-short requests under `SCHED_FIFO` and predicted-long
/// ones under CFS. No adaptive slice, no polling, no overload fallback.
///
/// Its weakness is the point: app identity is a poor duration predictor
/// under Table I's multimodal distribution (a single app spans 1 ms to
/// minutes), so predicted-short convoys form behind mispredicted longs —
/// the exact failure SFS's FILTER slice exists to prevent.
#[derive(Debug, Clone)]
pub struct HistoryPriority {
    /// `SCHED_FIFO` priority for predicted-short requests.
    prio: u8,
    /// Predicted-duration boundary between short and long (ms).
    threshold_ms: f64,
    /// Per-app `(total observed CPU ms, completions)`, indexed by
    /// [`app_index`].
    history: [(f64, u64); 3],
    /// Live pid → app, for completion accounting.
    live: BTreeMap<Pid, AppKind>,
    /// Requests dispatched to FIFO (predicted short).
    fast_tracked: u64,
}

fn app_index(app: AppKind) -> usize {
    match app {
        AppKind::Fib => 0,
        AppKind::Md => 1,
        AppKind::Sa => 2,
    }
}

impl HistoryPriority {
    /// A strawman with the paper's FILTER priority (50) and the Table I
    /// long-function boundary (1550 ms) as the prediction threshold.
    pub fn new() -> HistoryPriority {
        HistoryPriority::with_threshold(50, 1550.0)
    }

    /// Custom FIFO priority and short/long prediction boundary.
    pub fn with_threshold(prio: u8, threshold_ms: f64) -> HistoryPriority {
        assert!(
            (1..=99).contains(&prio),
            "SCHED_FIFO priority must be 1..=99"
        );
        HistoryPriority {
            prio,
            threshold_ms,
            history: [(0.0, 0); 3],
            live: BTreeMap::new(),
            fast_tracked: 0,
        }
    }

    /// Mean observed CPU (ms) for `app`, if any completions were seen.
    fn predicted_ms(&self, app: AppKind) -> Option<f64> {
        let (sum, n) = self.history[app_index(app)];
        (n > 0).then(|| sum / n as f64)
    }
}

impl Default for HistoryPriority {
    fn default() -> Self {
        HistoryPriority::new()
    }
}

impl Controller for HistoryPriority {
    fn name(&self) -> &'static str {
        "history-priority"
    }

    fn dispatch_policy(&mut self, req: &Request) -> Policy {
        // Optimistic cold start: an app with no history is assumed short
        // (most of Table I's mass is short).
        let short = match self.predicted_ms(req.app) {
            Some(ms) => ms < self.threshold_ms,
            None => true,
        };
        if short {
            self.fast_tracked += 1;
            Policy::Fifo { prio: self.prio }
        } else {
            Policy::NORMAL
        }
    }

    fn on_arrival(&mut self, _m: &mut MachineView<'_>, req: &Request, pid: Pid) {
        self.live.insert(pid, req.app);
    }

    fn on_notification(&mut self, _m: &mut MachineView<'_>, note: &Notification) {
        if let Notification::Finished(rec) = note {
            if let Some(app) = self.live.remove(&rec.pid) {
                let slot = &mut self.history[app_index(app)];
                slot.0 += rec.cpu_time.as_millis_f64();
                slot.1 += 1;
            }
        }
    }

    fn finish(&mut self, telemetry: &mut Telemetry) {
        // Reuse the generic counter: "offloaded" = requests the policy
        // left to CFS (predicted long).
        let total: u64 = self.history.iter().map(|&(_, n)| n).sum();
        telemetry.offloaded = total.saturating_sub(self.fast_tracked);
    }
}

/// A user-space multi-level feedback queue built from the four legal
/// operations alone.
///
/// Every request starts at `nice` [`UserMlfq::LADDER`]`[0].1`; a periodic
/// `/proc` sweep (the same polling loop SFS uses for I/O detection) reads
/// each live process's consumed CPU time and renices it down the ladder as
/// it crosses the consumption thresholds. Short functions therefore keep
/// near-full CFS weight while long ones decay toward `nice 19`,
/// approximating SRTF's preference without any real-time class — a
/// lighter-touch policy than SFS (no FIFO starvation risk, no overload
/// mode) at the cost of reaction latency and weaker isolation.
#[derive(Debug, Clone)]
pub struct UserMlfq {
    poll_interval: SimDuration,
    /// Live pid → current ladder tier.
    live: BTreeMap<Pid, usize>,
    next_poll: Option<SimTime>,
    polls: u64,
    polled_tasks: u64,
    /// Renice actions that moved a task to the bottom tier.
    bottomed: u64,
}

impl UserMlfq {
    /// Consumed-CPU thresholds → `nice` level. A task that has consumed at
    /// least `LADDER[i].0` of CPU runs at `LADDER[i].1`.
    pub const LADDER: [(SimDuration, i8); 4] = [
        (SimDuration::ZERO, 0),
        (SimDuration::from_millis(50), 4),
        (SimDuration::from_millis(400), 9),
        (SimDuration::from_millis(1550), 19),
    ];

    /// An MLFQ controller sweeping `/proc` every `poll_interval`.
    pub fn new(poll_interval: SimDuration) -> UserMlfq {
        assert!(!poll_interval.is_zero(), "poll interval must be positive");
        UserMlfq {
            poll_interval,
            live: BTreeMap::new(),
            next_poll: None,
            polls: 0,
            polled_tasks: 0,
            bottomed: 0,
        }
    }

    /// Ladder tier for a given consumed-CPU total.
    fn tier_of(cpu: SimDuration) -> usize {
        Self::LADDER
            .iter()
            .rposition(|&(thr, _)| cpu >= thr)
            .unwrap_or(0)
    }
}

impl Default for UserMlfq {
    fn default() -> Self {
        UserMlfq::new(SimDuration::from_millis(4))
    }
}

impl Controller for UserMlfq {
    fn name(&self) -> &'static str {
        "user-mlfq"
    }

    fn dispatch_policy(&mut self, _req: &Request) -> Policy {
        Policy::Normal {
            nice: Self::LADDER[0].1,
        }
    }

    fn on_arrival(&mut self, m: &mut MachineView<'_>, _req: &Request, pid: Pid) {
        self.live.insert(pid, 0);
        if self.next_poll.is_none() {
            self.next_poll = Some(m.now() + self.poll_interval);
        }
    }

    fn on_notification(&mut self, _m: &mut MachineView<'_>, note: &Notification) {
        if let Notification::Finished(rec) = note {
            self.live.remove(&rec.pid);
        }
    }

    fn next_wakeup(&self) -> Option<SimTime> {
        self.next_poll
    }

    fn on_wakeup(&mut self, m: &mut MachineView<'_>) {
        let Some(at) = self.next_poll else {
            return;
        };
        if m.now() < at {
            return;
        }
        self.polls += 1;
        // BTreeMap iteration (ascending pid) keeps the sweep deterministic.
        let pids: Vec<Pid> = self.live.keys().copied().collect();
        for pid in pids {
            self.polled_tasks += 1;
            if m.proc_state(pid) == ProcState::Dead {
                self.live.remove(&pid);
                continue;
            }
            let tier = Self::tier_of(m.cpu_time(pid));
            let cur = self.live.get_mut(&pid).expect("live task tracked");
            if tier > *cur {
                *cur = tier;
                m.set_policy(
                    pid,
                    Policy::Normal {
                        nice: Self::LADDER[tier].1,
                    },
                );
                if tier == Self::LADDER.len() - 1 {
                    self.bottomed += 1;
                }
            }
        }
        self.next_poll = if self.live.is_empty() {
            None
        } else {
            Some(m.now() + self.poll_interval)
        };
    }

    fn finish(&mut self, telemetry: &mut Telemetry) {
        telemetry.polls = self.polls;
        telemetry.polled_tasks = self.polled_tasks;
        // Reuse the generic counter: "demoted" = tasks that decayed to the
        // bottom of the ladder.
        telemetry.demoted = self.bottomed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;
    use sfs_sched::MachineParams;
    use sfs_workload::WorkloadSpec;

    fn workload(n: usize, seed: u64) -> Workload {
        WorkloadSpec::azure_sampled(n, seed)
            .with_load(4, 0.8)
            .generate()
    }

    #[test]
    fn kernel_only_names_follow_policy() {
        assert_eq!(KernelOnly(Policy::NORMAL).name(), "kernel");
        assert_eq!(KernelOnly(Policy::Fifo { prio: 50 }).name(), "fifo");
        assert_eq!(KernelOnly(Policy::Rr { prio: 50 }).name(), "rr");
    }

    #[test]
    fn ideal_is_analytic_and_exact() {
        let w = workload(300, 7);
        let run = Sim::on(MachineParams::linux(4))
            .workload(&w)
            .controller(Ideal)
            .run();
        assert_eq!(run.outcomes.len(), 300);
        assert_eq!(run.sched_actions, 0);
        for (o, r) in run.outcomes.iter().zip(w.requests.iter()) {
            assert_eq!(o.id, r.id);
            assert_eq!(o.turnaround, r.spec.ideal_duration());
            assert_eq!(o.finished, r.arrival + o.ideal);
            assert_eq!(o.rte, 1.0);
        }
    }

    #[test]
    fn history_priority_completes_and_learns() {
        let w = workload(800, 11);
        let run = Sim::on(MachineParams::linux(4))
            .workload(&w)
            .controller(HistoryPriority::new())
            .run();
        assert_eq!(run.outcomes.len(), 800);
        // Kernel-policy switching never happens after dispatch.
        assert_eq!(run.sched_actions, 0);
    }

    #[test]
    fn history_priority_predicts_from_app_history() {
        let mut h = HistoryPriority::with_threshold(50, 100.0);
        assert!(h.predicted_ms(AppKind::Fib).is_none());
        h.history[app_index(AppKind::Fib)] = (1_000.0, 2); // mean 500 ms
        h.history[app_index(AppKind::Md)] = (90.0, 3); // mean 30 ms
        assert_eq!(h.predicted_ms(AppKind::Fib), Some(500.0));
        let fib = sfs_workload::WorkloadSpec::azure_sampled(1, 0).generate();
        let mut req = fib.requests[0].clone();
        req.app = AppKind::Fib;
        assert_eq!(h.dispatch_policy(&req), Policy::NORMAL);
        req.app = AppKind::Md;
        assert_eq!(h.dispatch_policy(&req), Policy::Fifo { prio: 50 });
        req.app = AppKind::Sa; // no history: optimistic short
        assert_eq!(h.dispatch_policy(&req), Policy::Fifo { prio: 50 });
    }

    #[test]
    fn user_mlfq_renices_long_tasks_and_helps_shorts() {
        let w = WorkloadSpec::azure_sampled(1_200, 13)
            .with_load(4, 1.0)
            .generate();
        let mlfq = Sim::on(MachineParams::linux(4))
            .workload(&w)
            .controller(UserMlfq::default())
            .run();
        let cfs = Sim::on(MachineParams::linux(4))
            .workload(&w)
            .controller(KernelOnly(Policy::NORMAL))
            .run();
        assert_eq!(mlfq.outcomes.len(), 1_200);
        assert!(mlfq.sched_actions > 0, "long tasks must get reniced");
        assert!(mlfq.telemetry.polls > 0);
        let mean_short = |r: &crate::RunOutcome| {
            let xs: Vec<f64> = r
                .outcomes
                .iter()
                .filter(|o| o.ideal < SimDuration::from_millis(400))
                .map(|o| o.turnaround.as_millis_f64())
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        assert!(
            mean_short(&mlfq) < mean_short(&cfs),
            "MLFQ should favour short functions: {} vs {}",
            mean_short(&mlfq),
            mean_short(&cfs)
        );
    }

    #[test]
    fn user_mlfq_tiers_are_monotone() {
        assert_eq!(UserMlfq::tier_of(SimDuration::ZERO), 0);
        assert_eq!(UserMlfq::tier_of(SimDuration::from_millis(49)), 0);
        assert_eq!(UserMlfq::tier_of(SimDuration::from_millis(50)), 1);
        assert_eq!(UserMlfq::tier_of(SimDuration::from_millis(1000)), 2);
        assert_eq!(UserMlfq::tier_of(SimDuration::from_secs(60)), 3);
    }

    #[test]
    fn deterministic_across_runs() {
        let w = workload(400, 17);
        let go = |c: fn() -> Box<dyn Controller>| {
            Sim::on(MachineParams::linux(4))
                .workload(&w)
                .boxed_controller(c())
                .run()
        };
        for ctor in [
            (|| Box::new(HistoryPriority::new()) as Box<dyn Controller>) as fn() -> _,
            || Box::new(UserMlfq::default()) as Box<dyn Controller>,
        ] {
            let a = go(ctor);
            let b = go(ctor);
            for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
                assert_eq!(x.finished, y.finished);
                assert_eq!(x.ctx_switches, y.ctx_switches);
            }
            assert_eq!(a.sched_actions, b.sched_actions);
        }
    }
}
