//! Golden-compat gate for the policy-driven API redesign.
//!
//! The `Controller` + `Sim` redesign must be a pure refactor of the
//! simulation semantics: every pre-redesign golden snapshot has to be
//! reproduced bit-exactly by the new API, and the deprecated shims
//! (`SfsSimulator`, `run_baseline`) must agree with the `Sim` runs they
//! delegate to. Regenerating snapshots (`SFS_GOLDEN_UPDATE`) is *not* an
//! acceptable fix for a failure here.

mod support;

use std::path::PathBuf;

use sfs_core::{Baseline, RequestOutcome, SfsConfig, Sim};
use sfs_sched::MachineParams;
use sfs_workload::WorkloadSpec;

/// The scenarios whose snapshots predate the API redesign: any drift in
/// them means the redesign changed simulation behaviour.
const PRE_REDESIGN: &[&str] = &[
    "azure80_sfs",
    "azure80_cfs",
    "azure100_sfs",
    "replay_sfs",
    "diurnal_sfs",
    "correlated_sfs",
    "coldstart_sfs",
    "openlambda_sfs",
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

#[test]
fn new_api_reproduces_pre_redesign_snapshots_bit_exactly() {
    assert_eq!(
        &support::SCENARIOS[..PRE_REDESIGN.len()],
        PRE_REDESIGN,
        "pre-redesign scenarios must stay first (and unrenamed) in the suite"
    );
    for &name in PRE_REDESIGN {
        let report = support::metrics_report(name, &support::run_scenario(name));
        let path = golden_dir().join(format!("{name}.txt"));
        let expected = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        assert_eq!(
            expected, report,
            "{name}: the new Sim/Controller API drifted from the pre-redesign snapshot"
        );
    }
}

#[test]
fn deprecated_shims_agree_with_sim_runs() {
    let w = WorkloadSpec::azure_sampled(600, support::SEED)
        .with_load(8, 0.9)
        .generate();

    #[allow(deprecated)]
    let old_sfs =
        sfs_core::SfsSimulator::new(SfsConfig::new(8), MachineParams::linux(8), w.clone()).run();
    let new_sfs = Sim::on(MachineParams::linux(8))
        .workload(&w)
        .controller(sfs_core::SfsController::new(SfsConfig::new(8)))
        .run();
    assert_eq!(
        support::fingerprint(&old_sfs.outcomes),
        support::fingerprint(&new_sfs.outcomes),
        "SfsSimulator shim drifted from Sim + SfsController"
    );

    for b in [Baseline::Cfs, Baseline::Fifo, Baseline::Rr, Baseline::Srtf] {
        #[allow(deprecated)]
        let old: Vec<RequestOutcome> = sfs_core::run_baseline(b, 8, &w);
        let mut mp = MachineParams::linux(8);
        sfs_core::ControllerFactory::configure_machine(&b, &mut mp);
        let new = Sim::on(mp)
            .workload(&w)
            .boxed_controller(sfs_core::ControllerFactory::build(&b))
            .run();
        assert_eq!(
            support::fingerprint(&old),
            support::fingerprint(&new.outcomes),
            "run_baseline({}) shim drifted from Sim + KernelOnly",
            b.name()
        );
    }
}
