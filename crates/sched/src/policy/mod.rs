//! The pluggable kernel-policy layer.
//!
//! The machine's event loop ([`crate::Machine`]) owns time, cores, task
//! lifecycle, and event delivery; *which task runs where, for how long* is
//! delegated to a [`KernelPolicy`] value behind a narrow hook interface —
//! the sched_ext idea applied to the simulator. A policy owns its runqueue
//! structures outright and reaches machine state only through a
//! [`KernelCtx`] capability object, so the machine core never needs to know
//! a policy's data layout and a policy can never corrupt machine
//! bookkeeping it was not handed.
//!
//! Shipped policies:
//!
//! * [`LinuxPolicy`] — the faithful Linux model: global RT runqueue
//!   (`SCHED_FIFO`/`SCHED_RR`) over per-core CFS with wakeup preemption,
//!   idle stealing, and balance-tick migration (the pre-refactor machine,
//!   bit-for-bit);
//! * [`SrtfPolicy`] — the offline oracle: preemptive shortest-remaining-
//!   CPU-time-first (bit-for-bit the pre-refactor SRTF mode);
//! * [`EevdfPolicy`] — eligible-virtual-deadline-first, mainline CFS's
//!   successor: per-core fair queues picked by earliest virtual deadline
//!   among eligible tasks;
//! * [`DeadlinePolicy`] — a deadline class with CBS-style runtime/period
//!   reservations, admission control, and deadline postponement;
//! * [`SrpPolicy`] — a preemption-ceiling (SRP-flavored) discipline: the
//!   normal band runs to block under a system ceiling, higher bands
//!   preempt immediately.
//!
//! Hook contract (who calls what, when) is documented on [`KernelPolicy`];
//! decisions flow back to the machine as [`Placed`] values so a hook never
//! re-enters the event loop.

pub mod cfs;
pub mod deadline;
pub mod eevdf;
pub mod linux;
pub mod rt;
pub mod srp;
pub mod srtf;

pub use deadline::DeadlinePolicy;
pub use eevdf::EevdfPolicy;
pub use linux::LinuxPolicy;
pub use srp::SrpPolicy;
pub use srtf::SrtfPolicy;

use sfs_simcore::{SimDuration, SimTime};

use crate::machine::CoreSched;
use crate::policy::cfs::{weight_of_nice, CfsParams};
use crate::smp::SmpParams;
use crate::task::{Pid, Policy, ProcState, Task};

/// Built-in kernel policies selectable by name — the value that travels
/// through [`MachineParams`](crate::MachineParams), `SfsConfig`, CLI flags,
/// and bench matrices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelPolicyKind {
    /// Linux: RT (`SCHED_FIFO`/`SCHED_RR`) over per-core CFS.
    Cfs,
    /// Offline oracle: preemptive shortest-remaining-CPU-time-first.
    Srtf,
    /// Eligible-virtual-deadline-first (mainline CFS's successor).
    Eevdf,
    /// Deadline class: CBS runtime/period reservations with admission.
    Deadline,
    /// Preemption-ceiling (SRP-flavored) static-priority discipline.
    Srp,
}

impl KernelPolicyKind {
    /// Every registered kernel policy, in stable display order.
    pub const ALL: [KernelPolicyKind; 5] = [
        KernelPolicyKind::Cfs,
        KernelPolicyKind::Srtf,
        KernelPolicyKind::Eevdf,
        KernelPolicyKind::Deadline,
        KernelPolicyKind::Srp,
    ];

    /// CLI / config name (`--kpolicy` spelling).
    pub fn name(self) -> &'static str {
        match self {
            KernelPolicyKind::Cfs => "cfs",
            KernelPolicyKind::Srtf => "srtf",
            KernelPolicyKind::Eevdf => "eevdf",
            KernelPolicyKind::Deadline => "dl",
            KernelPolicyKind::Srp => "srp",
        }
    }

    /// Parse a CLI / config spelling (aliases: `linux` → cfs,
    /// `deadline` → dl).
    pub fn parse(s: &str) -> Option<KernelPolicyKind> {
        match s {
            "cfs" | "linux" => Some(KernelPolicyKind::Cfs),
            "srtf" => Some(KernelPolicyKind::Srtf),
            "eevdf" => Some(KernelPolicyKind::Eevdf),
            "dl" | "deadline" => Some(KernelPolicyKind::Deadline),
            "srp" => Some(KernelPolicyKind::Srp),
            _ => None,
        }
    }

    /// Construct the policy value for a machine with `cores` cores.
    pub fn build(self, cores: usize) -> Box<dyn KernelPolicy> {
        match self {
            KernelPolicyKind::Cfs => Box::new(LinuxPolicy::new(cores)),
            KernelPolicyKind::Srtf => Box::new(SrtfPolicy::new()),
            KernelPolicyKind::Eevdf => Box::new(EevdfPolicy::new(cores)),
            KernelPolicyKind::Deadline => Box::new(DeadlinePolicy::new(cores)),
            KernelPolicyKind::Srp => Box::new(SrpPolicy::new()),
        }
    }
}

impl std::fmt::Display for KernelPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A placement decision returned by policy hooks. The machine executes the
/// decision (charging, preempting, rescheduling) so hooks never re-enter
/// the event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placed {
    /// The task was queued; nothing else to do.
    Queued,
    /// The task was queued and core `0` is idle: pick-next on it.
    RescheduleIdle(usize),
    /// Preempt the task running on the given core (the machine charges it,
    /// requeues it via [`KernelPolicy::requeue_preempted`], and repicks).
    Preempt(usize),
    /// The given core's runqueue grew: recompute its running task's slice
    /// (the kernel's per-tick `check_preempt_tick`).
    RefreshSlice(usize),
}

/// Why a running task is being requeued — policies that distinguish
/// voluntary-quantum expiry from involuntary preemption (SCHED_RR's
/// head-vs-tail rule) branch on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptKind {
    /// Preempted by another task (or demoted): resumes before its peers.
    Preempted,
    /// Its own timeslice expired: goes behind its peers.
    SliceExpired,
}

/// Capability object handed to every policy hook: the slice of machine
/// state a kernel policy is allowed to see and touch.
///
/// | capability | methods |
/// |---|---|
/// | clocks | [`now`](Self::now) |
/// | topology | [`nr_cores`](Self::nr_cores), [`current`](Self::current) |
/// | tunables | [`cfs_params`](Self::cfs_params), [`smp_params`](Self::smp_params) |
/// | task state | [`policy_of`](Self::policy_of), [`state_of`](Self::state_of), [`remaining_cpu`](Self::remaining_cpu), [`has_run`](Self::has_run) |
/// | vruntime | [`vruntime`](Self::vruntime), [`set_vruntime`](Self::set_vruntime), [`weight_of`](Self::weight_of), [`running_vruntime`](Self::running_vruntime) |
/// | placement | [`home_core`](Self::home_core), [`set_home_core`](Self::set_home_core), [`note_migration`](Self::note_migration), [`add_migration_cost`](Self::add_migration_cost) |
/// | in-flight run | [`inflight`](Self::inflight) |
pub struct KernelCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) cfs: &'a CfsParams,
    pub(crate) smp: &'a SmpParams,
    pub(crate) tasks: &'a mut Vec<Task>,
    pub(crate) cores: &'a mut [CoreSched],
}

impl KernelCtx<'_> {
    fn task(&self, pid: Pid) -> &Task {
        &self.tasks[pid.0 as usize]
    }

    fn task_mut(&mut self, pid: Pid) -> &mut Task {
        &mut self.tasks[pid.0 as usize]
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of cores on the machine.
    pub fn nr_cores(&self) -> usize {
        self.cores.len()
    }

    /// The task currently running on `core`, if any.
    pub fn current(&self, core: usize) -> Option<Pid> {
        self.cores[core].current
    }

    /// CFS tunables (slice/period/wakeup-granularity rules).
    pub fn cfs_params(&self) -> &CfsParams {
        self.cfs
    }

    /// SMP tunables (balance threshold, migration/affinity costs).
    pub fn smp_params(&self) -> &SmpParams {
        self.smp
    }

    /// The task's scheduling policy class.
    pub fn policy_of(&self, pid: Pid) -> Policy {
        self.task(pid).policy
    }

    /// The task's kernel run state.
    pub fn state_of(&self, pid: Pid) -> ProcState {
        self.task(pid).state
    }

    /// CFS weight of the task (nice-derived; RT tasks weigh as nice 0).
    pub fn weight_of(&self, pid: Pid) -> u32 {
        match self.task(pid).policy {
            Policy::Normal { nice } => weight_of_nice(nice),
            // RT tasks do not participate in CFS weight accounting; the
            // value is only used if one is (incorrectly) queued on CFS.
            _ => weight_of_nice(0),
        }
    }

    /// The task's virtual runtime (CFS vruntime / EEVDF eligible time).
    pub fn vruntime(&self, pid: Pid) -> u64 {
        self.task(pid).vruntime
    }

    /// Overwrite the task's virtual runtime (placement normalisation).
    pub fn set_vruntime(&mut self, pid: Pid, v: u64) {
        self.task_mut(pid).vruntime = v;
    }

    /// Remaining CPU demand across current and future phases (the SRTF
    /// sort key).
    pub fn remaining_cpu(&self, pid: Pid) -> SimDuration {
        self.task(pid).remaining_cpu()
    }

    /// True once the task has been dispatched at least once.
    pub fn has_run(&self, pid: Pid) -> bool {
        self.task(pid).first_run.is_some()
    }

    /// The core whose runqueue currently owns the task, if placed.
    pub fn home_core(&self, pid: Pid) -> Option<usize> {
        self.task(pid).home_core
    }

    /// Record which core's runqueue owns the task.
    pub fn set_home_core(&mut self, pid: Pid, core: Option<usize>) {
        self.task_mut(pid).home_core = core;
    }

    /// Count one core-to-core migration against the task.
    pub fn note_migration(&mut self, pid: Pid) {
        self.task_mut(pid).migrations += 1;
    }

    /// Deposit a one-shot dispatch-latency penalty (consumed at the task's
    /// next dispatch) — the balance-migration cost channel.
    pub fn add_migration_cost(&mut self, pid: Pid, cost: SimDuration) {
        self.task_mut(pid).pending_migration_cost += cost;
    }

    /// Wall time the task running on `core` has consumed since its last
    /// accounting boundary (zero while the dispatch cost is still being
    /// paid).
    pub fn inflight(&self, core: usize) -> SimDuration {
        let c = &self.cores[core];
        if self.now > c.run_start {
            self.now - c.run_start
        } else {
            SimDuration::ZERO
        }
    }

    /// vruntime of the task running on `core` including its in-flight
    /// (uncharged) run — the wakeup-preemption comparison value.
    pub fn running_vruntime(&self, core: usize, pid: Pid) -> u64 {
        let inflight = self.inflight(core);
        let extra = if inflight.is_zero() {
            0
        } else {
            CfsParams::vruntime_delta(inflight, self.weight_of(pid))
        };
        self.task(pid).vruntime + extra
    }
}

/// A kernel scheduling discipline plugged into the [`crate::Machine`].
///
/// The machine calls hooks at these points (and only these):
///
/// * a task becomes runnable (spawn, wakeup, policy-change requeue) →
///   [`enqueue`](Self::enqueue); the returned [`Placed`] decision is
///   executed by the machine;
/// * a queued task must leave its queue (policy change) →
///   [`dequeue`](Self::dequeue);
/// * a core needs work → [`pick_next`](Self::pick_next); the policy
///   removes and returns the chosen task (stealing across queues is the
///   policy's own business);
/// * a running task is preempted or expires →
///   [`requeue_preempted`](Self::requeue_preempted);
/// * a task is dispatched or its slice renewed →
///   [`slice_for`](Self::slice_for) decides the quantum;
/// * a core's runqueue grew under its running task →
///   [`refresh_slice`](Self::refresh_slice);
/// * CPU time is charged → [`task_tick`](Self::task_tick) (vruntime /
///   budget accounting);
/// * a task dies → [`on_task_exit`](Self::on_task_exit) (reservation
///   reclamation);
/// * the periodic balance tick fires → [`balance`](Self::balance), if
///   [`participates_in_balance`](Self::participates_in_balance).
///
/// Determinism contract: every decision must be a pure function of the
/// policy's own state plus what [`KernelCtx`] exposes, with ties broken on
/// core index / pid — no randomness, no host state.
pub trait KernelPolicy: std::fmt::Debug + Send {
    /// Stable display name (lower-case, CLI spelling).
    fn name(&self) -> &'static str;

    /// A task became runnable: queue it and decide what the machine should
    /// do about the cores.
    fn enqueue(&mut self, ctx: &mut KernelCtx<'_>, pid: Pid) -> Placed;

    /// Remove a queued (Runnable, not Running) task from its queue.
    fn dequeue(&mut self, ctx: &mut KernelCtx<'_>, pid: Pid);

    /// Pick (and remove from its queue) the next task for an idle `core`,
    /// or `None` to leave it idle.
    fn pick_next(&mut self, ctx: &mut KernelCtx<'_>, core: usize) -> Option<Pid>;

    /// Requeue a task that was just preempted (or expired) on `core`.
    fn requeue_preempted(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        core: usize,
        pid: Pid,
        why: PreemptKind,
    );

    /// The timeslice to grant `pid` dispatched on `core` (also the renewal
    /// slice when it keeps the core uncontested). Return
    /// [`SimDuration::MAX`] for unsliced (run-to-block) disciplines.
    fn slice_for(&mut self, ctx: &mut KernelCtx<'_>, core: usize, pid: Pid) -> SimDuration;

    /// `core`'s queue membership changed under its running task: the new
    /// slice to apply from `slice_start`, or `None` to leave the current
    /// slice untouched.
    fn refresh_slice(
        &mut self,
        _ctx: &mut KernelCtx<'_>,
        _core: usize,
        _pid: Pid,
    ) -> Option<SimDuration> {
        None
    }

    /// `pid` on `core` was charged `ran` of wall-clock CPU: update
    /// vruntime / budget accounting.
    fn task_tick(&mut self, ctx: &mut KernelCtx<'_>, core: usize, pid: Pid, ran: SimDuration);

    /// `pid` exited (its state is already Dead): release any reservation.
    fn on_task_exit(&mut self, _ctx: &mut KernelCtx<'_>, _pid: Pid) {}

    /// Would anything else run on `core` if its current task were paused?
    /// Gates slice-expiry preemption (no competition → renew in place).
    fn has_competition(&self, ctx: &KernelCtx<'_>, core: usize) -> bool;

    /// Is any task waiting anywhere? Gates involuntary-context-switch
    /// accounting on preemption.
    fn has_waiters(&self, ctx: &KernelCtx<'_>) -> bool;

    /// True if [`crate::Machine::set_policy`] is a pure bookkeeping change
    /// under this discipline (the oracle ignores policy classes).
    fn policy_change_inert(&self) -> bool {
        false
    }

    /// Does changing a *running* task from `old` to `new` force it off its
    /// core (Linux's RT → CFS demotion)?
    fn demotes_on_change(&self, _old: Policy, _new: Policy) -> bool {
        false
    }

    /// Whether the periodic SMP balance tick should consult this policy.
    fn participates_in_balance(&self) -> bool {
        false
    }

    /// One balance-tick step: migrate at most one task between queues and
    /// return the decision for the destination core, or `None` if the load
    /// is already balanced.
    fn balance(&mut self, _ctx: &mut KernelCtx<'_>) -> Option<Placed> {
        None
    }

    /// Queued (runnable, not running) fair-class tasks on `core`'s local
    /// runqueue — the `/proc/schedstat` per-CPU depth.
    fn queue_depth(&self, core: usize) -> usize;

    /// Queued tasks in the machine-global priority band (RT queue, SRP
    /// stack, ...), if the policy has one.
    fn rt_depth(&self) -> usize {
        0
    }

    /// In how many distinct queue slots does `pid` currently appear?
    /// Conservation audits require exactly 1 for queued Runnable tasks and
    /// 0 otherwise.
    fn queued_places(&self, pid: Pid) -> usize;
}

/// Shared RT-band enqueue used by every policy that layers the Linux
/// `SCHED_FIFO`/`SCHED_RR` band above its fair class: push, then prefer an
/// idle core, then preempt a fair-class core, then the lowest-priority RT
/// core if strictly beaten. Bit-for-bit the pre-refactor `enqueue_rt`.
pub(crate) fn rt_band_enqueue(
    rt: &mut rt::RtRunqueue,
    ctx: &KernelCtx<'_>,
    pid: Pid,
    prio: u8,
    resumed: bool,
) -> Placed {
    if resumed {
        rt.push_front(pid, prio);
    } else {
        rt.push_back(pid, prio);
    }
    // 1. Idle core grabs it.
    if let Some(idle) = (0..ctx.nr_cores()).find(|&i| ctx.current(i).is_none()) {
        return Placed::RescheduleIdle(idle);
    }
    // 2. Preempt a core running the fair class (RT always beats it).
    let fair_victim = (0..ctx.nr_cores()).find(|&i| {
        let vpid = ctx.current(i).expect("no idle cores");
        !ctx.policy_of(vpid).is_realtime()
    });
    if let Some(vc) = fair_victim {
        return Placed::Preempt(vc);
    }
    // 3. Preempt the lowest-priority RT core if strictly lower.
    let (vc, vprio) = (0..ctx.nr_cores())
        .map(|i| {
            let vpid = ctx.current(i).expect("no idle cores");
            (i, ctx.policy_of(vpid).rt_prio().unwrap_or(0))
        })
        .min_by_key(|&(_, p)| p)
        .expect("at least one core");
    if rt.would_preempt(vprio) {
        return Placed::Preempt(vc);
    }
    Placed::Queued
}
