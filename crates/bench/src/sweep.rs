//! The shared experiment matrix engine: [`Scenario`] / [`Sweep`].
//!
//! Every bench binary describes its figure as a list of *scenarios* — one
//! independent trial per config point (a load level, a slice variant, a
//! scheduler) — and hands the list to a [`Sweep`], which fans the trials
//! out over `sfs_simcore::parallel` and returns the results **in
//! submission order**. Printing and CSV writing happen afterwards on the
//! main thread, so a binary's stdout is byte-identical for every
//! `SFS_BENCH_THREADS` value.
//!
//! The RNG stream-splitting contract: each trial receives a [`Trial`]
//! carrying a seed derived from the sweep's master seed by the SplitMix64
//! [`sfs_simcore::SeedSequencer`] — a pure function of
//! `(master, trial index)`. Trials that must *share* a workload with a
//! sibling (e.g. SFS and CFS runs compared pairwise on the same request
//! list) instead regenerate it from the captured master seed; both
//! disciplines are order- and thread-count-independent.
//!
//! ```
//! use sfs_bench::sweep::Sweep;
//!
//! let mut sweep = Sweep::new("doc", 42);
//! for load in [50u32, 80, 100] {
//!     sweep.scenario(format!("load {load}%"), move |t| load as u64 + t.seed % 2);
//! }
//! let results = sweep.run();
//! assert_eq!(results.len(), 3);
//! assert_eq!(results[0].label, "load 50%");
//! ```

use sfs_simcore::parallel::{self, SeedSequencer};
use sfs_simcore::SimRng;

/// Per-trial context handed to a scenario body.
#[derive(Debug, Clone, Copy)]
pub struct Trial {
    /// Position of this scenario in the sweep (also its result slot).
    pub index: usize,
    /// This trial's own seed, sequenced from the master seed.
    pub seed: u64,
    /// The sweep-wide master seed (for scenarios that must share a
    /// workload with siblings).
    pub master_seed: u64,
}

impl Trial {
    /// A fresh RNG on this trial's private stream.
    pub fn rng(&self) -> SimRng {
        SimRng::seed_from_u64(self.seed)
    }
}

/// One labelled point of an experiment matrix.
pub struct Scenario<'a, R> {
    /// Display label (series name, table row, chart legend).
    pub label: String,
    body: Box<dyn Fn(&Trial) -> R + Send + Sync + 'a>,
}

/// Result of one scenario, in submission order.
#[derive(Debug, Clone)]
pub struct SweepResult<R> {
    /// The scenario's label.
    pub label: String,
    /// Whatever the scenario body returned.
    pub value: R,
}

/// A deterministic parallel sweep over labelled scenarios.
pub struct Sweep<'a, R> {
    name: String,
    master_seed: u64,
    scenarios: Vec<Scenario<'a, R>>,
}

impl<'a, R: Send> Sweep<'a, R> {
    /// An empty sweep named `name` (progress line) rooted at `master_seed`.
    pub fn new(name: impl Into<String>, master_seed: u64) -> Sweep<'a, R> {
        Sweep {
            name: name.into(),
            master_seed,
            scenarios: Vec::new(),
        }
    }

    /// Append a scenario; trials run in submission order slots.
    pub fn scenario(
        &mut self,
        label: impl Into<String>,
        body: impl Fn(&Trial) -> R + Send + Sync + 'a,
    ) -> &mut Self {
        self.scenarios.push(Scenario {
            label: label.into(),
            body: Box::new(body),
        });
        self
    }

    /// Number of scenarios queued.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True iff no scenarios were added.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Run every scenario with the default worker count
    /// (`SFS_BENCH_THREADS`, else available parallelism).
    pub fn run(&self) -> Vec<SweepResult<R>> {
        self.run_with_threads(parallel::default_threads())
    }

    /// Run every scenario across `threads` workers. The returned vector is
    /// in scenario-submission order and bit-identical for every `threads`
    /// value ≥ 1.
    pub fn run_with_threads(&self, threads: usize) -> Vec<SweepResult<R>> {
        let n = self.scenarios.len();
        let seq = SeedSequencer::new(self.master_seed);
        eprintln!(
            "[sweep {}: {} trial{} on {} thread{}]",
            self.name,
            n,
            if n == 1 { "" } else { "s" },
            threads.min(n.max(1)),
            if threads.min(n.max(1)) == 1 { "" } else { "s" },
        );
        parallel::run_indexed(n, threads, |i| {
            let trial = Trial {
                index: i,
                seed: seq.seed_for(i as u64),
                master_seed: self.master_seed,
            };
            SweepResult {
                label: self.scenarios[i].label.clone(),
                value: (self.scenarios[i].body)(&trial),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_submission_order_across_thread_counts() {
        let mut sweep = Sweep::new("test", 7);
        for i in 0..13usize {
            sweep.scenario(format!("s{i}"), move |t| (i, t.seed, t.rng().next_u64()));
        }
        assert_eq!(sweep.len(), 13);
        let one = sweep.run_with_threads(1);
        for threads in [2, 4, 8] {
            let many = sweep.run_with_threads(threads);
            for (a, b) in one.iter().zip(many.iter()) {
                assert_eq!(a.label, b.label);
                assert_eq!(a.value, b.value, "threads={threads}");
            }
        }
        for (i, r) in one.iter().enumerate() {
            assert_eq!(r.label, format!("s{i}"));
            assert_eq!(r.value.0, i);
        }
    }

    #[test]
    fn trials_see_distinct_seeds_but_shared_master() {
        let mut sweep = Sweep::new("seeds", 99);
        for i in 0..4usize {
            let _ = i;
            sweep.scenario("x", |t| (t.seed, t.master_seed));
        }
        let rs = sweep.run_with_threads(2);
        let seeds: Vec<u64> = rs.iter().map(|r| r.value.0).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len(), "per-trial seeds must differ");
        assert!(rs.iter().all(|r| r.value.1 == 99));
    }

    #[test]
    fn empty_sweep_is_fine() {
        let sweep: Sweep<'_, ()> = Sweep::new("empty", 0);
        assert!(sweep.is_empty());
        assert!(sweep.run_with_threads(4).is_empty());
    }
}
