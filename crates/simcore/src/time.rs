//! Virtual time for the discrete-event simulator.
//!
//! All simulated clocks are nanosecond-resolution `u64` wrappers. The paper's
//! quantities of interest span seven orders of magnitude (sub-millisecond
//! functions up to hundreds of seconds, §IV-A), which fits comfortably:
//! `u64` nanoseconds cover ~584 years of virtual time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulated clock, in nanoseconds since the
/// start of the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Nanoseconds since the simulation epoch.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional milliseconds since the epoch.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Fractional seconds since the epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Elapsed span since `earlier`, saturating at zero if `earlier` is later.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating add of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum span; "never" sentinel for timeouts.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> SimDuration {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> SimDuration {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> SimDuration {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> SimDuration {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// nanosecond and flooring negative values at zero.
    #[inline]
    pub fn from_millis_f64(ms: f64) -> SimDuration {
        SimDuration((ms.max(0.0) * 1.0e6).round() as u64)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimDuration {
        SimDuration((s.max(0.0) * 1.0e9).round() as u64)
    }

    /// Whole nanoseconds in this span.
    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional microseconds in this span.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1.0e3
    }

    /// Fractional milliseconds in this span.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e6
    }

    /// Fractional seconds in this span.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// True iff this span is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - other`, floored at zero.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Scale by a non-negative float, rounding to the nearest nanosecond.
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration((self.0 as f64 * k.max(0.0)).round() as u64)
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.1}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimDuration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(2).as_millis_f64(), 2000.0);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_nanos(), 1_500_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_millis_f64(), 250.0);
    }

    #[test]
    fn negative_float_inputs_floor_at_zero() {
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.1), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis(7).mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_millis_f64(), 10.0);
        let u = t + SimDuration::from_millis(5);
        assert_eq!(u - t, SimDuration::from_millis(5));
        // Subtracting a later instant saturates to zero rather than wrapping.
        assert_eq!(t - u, SimDuration::ZERO);
        assert_eq!(u.since(t), SimDuration::from_millis(5));
        assert_eq!(t.since(u), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_millis(8);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(b - a, SimDuration::from_millis(5));
        let mut c = a;
        c -= b;
        assert_eq!(c, SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.saturating_add(a), SimDuration::MAX);
        assert_eq!(SimTime::MAX.saturating_add(a), SimTime::MAX);
    }

    #[test]
    fn scaling_and_ratio() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3, SimDuration::from_millis(30));
        assert_eq!(d / 2, SimDuration::from_millis(5));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(25));
        assert!((d / SimDuration::from_millis(4) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn min_max_sum() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let total: SimDuration = [a, b, b].into_iter().sum();
        assert_eq!(total, SimDuration::from_millis(5));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}
