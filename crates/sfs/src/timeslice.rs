//! Adaptive FILTER time-slice controller (paper §V-C).
//!
//! SFS models the FILTER pool as an M/G/c queue (Eq. 2: `ρ = λ/(cµ)`) and
//! bounds the per-function FILTER residency `S` so the pool's service rate
//! tracks the arrival rate: `S = mean(last N IATs) × c`. A new `S` is
//! computed every N enqueued requests (N = 100 in the paper) from a sliding
//! window of observed inter-arrival times.

use sfs_simcore::{SimDuration, SimTime, SlidingWindow, TimeSeries};

use crate::config::{SfsConfig, SliceMode};

/// Produces the FILTER time slice `S`, adapting it from observed IATs.
#[derive(Debug)]
pub struct SliceController {
    mode: SliceMode,
    cores: usize,
    window: SlidingWindow,
    window_n: usize,
    min_slice: SimDuration,
    max_slice: SimDuration,
    current: SimDuration,
    arrivals_since_recalc: usize,
    last_arrival: Option<SimTime>,
    recalcs: u64,
    /// Whether the timelines below are recorded (`SfsConfig::record_series`).
    record_series: bool,
    /// Timeline of `(t, S in ms)` after each recalculation (Fig. 10).
    slice_timeline: TimeSeries,
    /// Timeline of `(t, window-mean IAT in ms)` at each recalculation.
    iat_timeline: TimeSeries,
}

impl SliceController {
    /// Build from an [`SfsConfig`].
    pub fn new(cfg: &SfsConfig) -> SliceController {
        let current = match cfg.slice_mode {
            SliceMode::Adaptive => cfg.initial_slice,
            SliceMode::Fixed(s) => s,
        };
        SliceController {
            mode: cfg.slice_mode,
            cores: cfg.workers,
            window: SlidingWindow::new(cfg.window_n),
            window_n: cfg.window_n,
            min_slice: cfg.min_slice,
            max_slice: cfg.max_slice,
            current,
            arrivals_since_recalc: 0,
            last_arrival: None,
            recalcs: 0,
            record_series: cfg.record_series,
            slice_timeline: TimeSeries::new("slice_ms"),
            iat_timeline: TimeSeries::new("iat_ms"),
        }
    }

    /// The current time slice `S`.
    pub fn current(&self) -> SimDuration {
        self.current
    }

    /// Number of adaptive recalculations performed.
    pub fn recalcs(&self) -> u64 {
        self.recalcs
    }

    /// Observe one request enqueue at time `t`; may recompute `S`.
    pub fn on_arrival(&mut self, t: SimTime) {
        if let Some(prev) = self.last_arrival {
            self.window.push(t.since(prev).as_millis_f64());
        }
        self.last_arrival = Some(t);
        if let SliceMode::Adaptive = self.mode {
            self.arrivals_since_recalc += 1;
            if self.arrivals_since_recalc >= self.window_n && !self.window.is_empty() {
                self.arrivals_since_recalc = 0;
                let mean_iat_ms = self.window.mean();
                let s = SimDuration::from_millis_f64(mean_iat_ms * self.cores as f64)
                    .max(self.min_slice)
                    .min(self.max_slice);
                self.current = s;
                self.recalcs += 1;
                if self.record_series {
                    self.slice_timeline.record(t, s.as_millis_f64());
                    self.iat_timeline.record(t, mean_iat_ms);
                }
            }
        }
    }

    /// Timeline of adapted slices (Fig. 10, left axis).
    pub fn slice_timeline(&self) -> &TimeSeries {
        &self.slice_timeline
    }

    /// Timeline of window-mean IATs (Fig. 10, right axis).
    pub fn iat_timeline(&self) -> &TimeSeries {
        &self.iat_timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(workers: usize) -> SfsConfig {
        SfsConfig::new(workers)
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn fixed_mode_never_changes() {
        let c = cfg(4).with_fixed_slice(50);
        let mut sc = SliceController::new(&c);
        for i in 0..1_000 {
            sc.on_arrival(t(i * 3));
        }
        assert_eq!(sc.current(), SimDuration::from_millis(50));
        assert_eq!(sc.recalcs(), 0);
        assert!(sc.slice_timeline().is_empty());
    }

    #[test]
    fn adaptive_recalcs_every_n() {
        let mut c = cfg(4);
        c.window_n = 10;
        let mut sc = SliceController::new(&c);
        // 10ms IATs on 4 cores → S = 40ms after the first 10 arrivals.
        for i in 0..10 {
            sc.on_arrival(t(i * 10));
        }
        assert_eq!(sc.recalcs(), 1);
        assert_eq!(sc.current(), SimDuration::from_millis(40));
        // Rate doubles (5ms IATs): after 10 more arrivals the window mean
        // falls and S follows.
        for i in 0..10 {
            sc.on_arrival(t(100 + i * 5));
        }
        assert_eq!(sc.recalcs(), 2);
        assert!(
            sc.current() < SimDuration::from_millis(40),
            "S must shrink when arrivals speed up: {}",
            sc.current()
        );
        assert_eq!(sc.slice_timeline().len(), 2);
        assert_eq!(sc.iat_timeline().len(), 2);
    }

    #[test]
    fn initial_slice_used_before_first_recalc() {
        let c = cfg(8);
        let mut sc = SliceController::new(&c);
        assert_eq!(sc.current(), c.initial_slice);
        for i in 0..50 {
            sc.on_arrival(t(i));
        }
        // Fewer than N=100 arrivals: still the initial slice.
        assert_eq!(sc.current(), c.initial_slice);
        assert_eq!(sc.recalcs(), 0);
    }

    #[test]
    fn slice_scales_with_core_count() {
        let mut c1 = cfg(1);
        c1.window_n = 5;
        let mut c16 = cfg(16);
        c16.window_n = 5;
        let mut s1 = SliceController::new(&c1);
        let mut s16 = SliceController::new(&c16);
        for i in 0..6 {
            s1.on_arrival(t(i * 20));
            s16.on_arrival(t(i * 20));
        }
        assert_eq!(s1.current(), SimDuration::from_millis(20));
        assert_eq!(s16.current(), SimDuration::from_millis(320));
    }

    #[test]
    fn clamps_apply() {
        let mut c = cfg(100);
        c.window_n = 2;
        c.max_slice = SimDuration::from_millis(500);
        c.min_slice = SimDuration::from_millis(200);
        let mut sc = SliceController::new(&c);
        // Huge IATs: S would be 100 × 1000ms = 100s, clamped to 500ms max.
        sc.on_arrival(t(0));
        sc.on_arrival(t(1_000));
        assert_eq!(sc.current(), SimDuration::from_millis(500));
        // 1ms IATs: S would be 100ms, clamped up to the 200ms floor.
        sc.on_arrival(t(1_001));
        sc.on_arrival(t(1_002));
        assert_eq!(sc.current(), SimDuration::from_millis(200));
    }
}
