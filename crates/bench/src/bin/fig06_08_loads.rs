//! Fig. 6 / 7 / 8: standalone SFS vs CFS under loads 50–100% on a 16-vCPU
//! host (§VIII-A): duration CDF, RTE CDF, and percentile breakdowns.
//!
//! Expected shape: SFS ≈ CFS at 50%; SFS flat across loads for ~83% of
//! requests (median ~constant); CFS median and tail grow with load; SFS
//! tail slightly above CFS's at matched load.

use sfs_bench::{
    banner, rtes, run_factory, run_sfs, save, section, split_short_long, turnarounds_ms, Sweep,
};
use sfs_core::{Baseline, RequestOutcome, SfsConfig};
use sfs_metrics::{cdf_chart, CdfReport, MarkdownTable, PercentileTable};
use sfs_workload::WorkloadSpec;

const CORES: usize = 16;
const LOADS: [f64; 5] = [0.5, 0.65, 0.8, 0.9, 1.0];

fn main() {
    let n = sfs_bench::n_requests(10_000);
    let seed = sfs_bench::seed();
    banner(
        "Fig. 6-8",
        "standalone SFS vs CFS across loads (16 vCPUs)",
        n,
        seed,
    );

    // One trial per (load, scheduler); SFS and CFS at the same load share
    // the workload by regenerating it from the master seed.
    let mut sweep: Sweep<'_, Vec<RequestOutcome>> = Sweep::new("fig06_08", seed);
    for &load in &LOADS {
        let gen = move || {
            WorkloadSpec::azure_sampled(n, seed)
                .with_load(CORES, load)
                .generate()
        };
        sweep.scenario(format!("SFS {:.0}%", load * 100.0), move |_| {
            run_sfs(SfsConfig::new(CORES), CORES, &gen()).outcomes
        });
        sweep.scenario(format!("CFS {:.0}%", load * 100.0), move |_| {
            run_factory(&Baseline::Cfs, CORES, &gen()).outcomes
        });
    }
    let results = sweep.run();

    let mut dur_report = CdfReport::new("duration_ms");
    let mut rte_report = CdfReport::new("rte");
    let mut pct = PercentileTable::new();
    let mut rte95 = MarkdownTable::new(&["series", "fraction RTE >= 0.95"]);
    let mut medians = MarkdownTable::new(&["load", "SFS p50 (ms)", "CFS p50 (ms)"]);
    let mut chart: Vec<(String, Vec<f64>)> = Vec::new();

    for (li, &load) in LOADS.iter().enumerate() {
        let sfs = &results[2 * li];
        let cfs = &results[2 * li + 1];
        for r in [sfs, cfs] {
            let durs = turnarounds_ms(&r.value);
            let rt = rtes(&r.value);
            let at95 = rt.iter().filter(|&&x| x >= 0.95).count() as f64 / rt.len() as f64;
            rte95.row(&[r.label.clone(), format!("{at95:.3}")]);
            pct.push(r.label.clone(), durs.clone());
            dur_report.push(r.label.clone(), durs.clone());
            rte_report.push(r.label.clone(), rt);
            if (load - 0.8).abs() < 1e-9 || (load - 1.0).abs() < 1e-9 {
                chart.push((r.label.clone(), durs));
            }
        }
        let mut s_samples = sfs_simcore::Samples::from_vec(turnarounds_ms(&sfs.value));
        let mut c_samples = sfs_simcore::Samples::from_vec(turnarounds_ms(&cfs.value));
        medians.row(&[
            format!("{:.0}%", load * 100.0),
            format!("{:.1}", s_samples.percentile(50.0)),
            format!("{:.1}", c_samples.percentile(50.0)),
        ]);

        // Short/long split at 100% for the headline cross-check.
        if (load - 1.0).abs() < 1e-9 {
            let (s_short, s_long) = split_short_long(&sfs.value);
            let (c_short, c_long) = split_short_long(&cfs.value);
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            section("100% load short/long means (ms)");
            println!(
                "short: SFS {:.1} vs CFS {:.1} ({:.1}x)",
                mean(&s_short),
                mean(&c_short),
                mean(&c_short) / mean(&s_short)
            );
            println!(
                "long : SFS {:.1} vs CFS {:.1} ({:.2}x, paper: 1.29x)",
                mean(&s_long),
                mean(&c_long),
                mean(&s_long) / mean(&c_long)
            );
        }
    }

    section("Fig. 6 duration CDF quantiles (ms)");
    println!("{}", dur_report.to_markdown());
    save("fig06_duration_cdf.csv", &dur_report.to_csv());

    section("Fig. 7 RTE CDF quantiles");
    println!("{}", rte_report.to_markdown());
    save("fig07_rte_cdf.csv", &rte_report.to_csv());
    section("fraction RTE >= 0.95 (paper: SFS 93%@65 88%@80; CFS 55%@65 35%@80)");
    println!("{}", rte95.to_markdown());

    section("Fig. 8 percentile breakdown (ms)");
    println!("{}", pct.to_markdown());
    save("fig08_percentiles.csv", &pct.to_csv());

    section("median duration by load (paper: SFS ~0.1s flat)");
    println!("{}", medians.to_markdown());

    section("duration CDF at 80%/100% (log-x)");
    let refs: Vec<(&str, &[f64])> = chart
        .iter()
        .map(|(l, v)| (l.as_str(), v.as_slice()))
        .collect();
    println!("{}", cdf_chart(&refs, 64, 16));
}
