//! The `simlint` ruleset: each rule encodes one invariant the repo's test
//! suites defend dynamically, checked here at the source level so a hazard
//! no golden snapshot happens to exercise cannot ship silently.
//!
//! Rule ids are stable and short (`D*` determinism, `P*` panic-safety,
//! `U*` unsafe containment, `K*` kernel-policy encapsulation) — they are
//! what `// lint: allow(<id>, <why>)` suppressions name. See
//! ARCHITECTURE.md "Static analysis" for the rule-by-rule rationale and
//! the contract for adding a rule.

/// How a rule matches the token stream.
#[derive(Debug, Clone, Copy)]
pub enum Matcher {
    /// Fires on any identifier token equal to one of these names.
    IdentAny(&'static [&'static str]),
    /// Fires on `a::b` path segments: each entry is a `::`-joined ident
    /// sequence that must appear verbatim (e.g. `["thread", "spawn"]`).
    PathSeq(&'static [&'static [&'static str]]),
    /// Fires on `head(...).tail` call chains — `head`, an argument list,
    /// then immediately `.tail` with `tail` in `tails` (e.g.
    /// `partial_cmp(x).unwrap()`).
    CallThen {
        /// Method name opening the chain.
        head: &'static str,
        /// Method names that complete the banned chain.
        tails: &'static [&'static str],
    },
}

/// One lint rule: an id, what it matches, where it applies, and why.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id used by suppressions (`D1`, `P1`, …).
    pub id: &'static str,
    /// One-line human summary used in findings.
    pub summary: &'static str,
    /// The repo invariant the rule defends (shown by `--rules`).
    pub rationale: &'static str,
    /// Skip code in `tests/`/`benches/` trees and `#[cfg(test)]`/`#[test]`
    /// regions.
    pub skip_test_code: bool,
    /// Paths (workspace-relative, `/`-separated) where the pattern is the
    /// file's purpose and findings are not raised: a plain entry is a file
    /// suffix match, an entry ending in `/` exempts the whole directory.
    pub allowed_paths: &'static [&'static str],
    /// Token pattern.
    pub matcher: Matcher,
}

/// The `simlint` ruleset, in presentation order.
pub const RULESET: &[Rule] = &[
    Rule {
        id: "D1",
        summary: "HashMap/HashSet in non-test code",
        rationale: "iteration order is nondeterministic, so any iteration (now or added later) \
                    can leak hash order into results; use BTreeMap/BTreeSet or a sorted Vec, or \
                    prove the map is lookups-only and add a reasoned allow",
        skip_test_code: true,
        allowed_paths: &[],
        matcher: Matcher::IdentAny(&["HashMap", "HashSet"]),
    },
    Rule {
        id: "D2",
        summary: "wall-clock read outside timebench/perf",
        rationale: "Instant/SystemTime read real time; simulated components must take time from \
                    SimTime so results are bit-identical across machines and runs",
        skip_test_code: true,
        allowed_paths: &["crates/bench/src/timebench.rs", "crates/bench/src/perf.rs"],
        matcher: Matcher::IdentAny(&["Instant", "SystemTime"]),
    },
    Rule {
        id: "D3",
        summary: "thread spawn outside simcore::parallel",
        rationale: "all fan-out goes through sfs_simcore::parallel, whose index-ordered slots \
                    and pure seed sequencing are what make results thread-count-invariant",
        skip_test_code: true,
        allowed_paths: &["crates/simcore/src/parallel.rs"],
        matcher: Matcher::PathSeq(&[&["thread", "spawn"], &["thread", "scope"]]),
    },
    Rule {
        id: "P1",
        summary: "partial_cmp().unwrap()/.expect() on floats",
        rationale: "one NaN anywhere in the data panics the whole run (the PR 7 ensure_sorted \
                    bug); use f64::total_cmp, which is total over NaN",
        skip_test_code: false,
        allowed_paths: &[],
        matcher: Matcher::CallThen {
            head: "partial_cmp",
            tails: &["unwrap", "expect"],
        },
    },
    Rule {
        id: "P2",
        summary: "try_into().unwrap()/.expect() in non-test code",
        rationale: "unchecked narrowing conversions on sim-time quantities turn a scale-up \
                    (10M-request runs, ns timestamps) into a panic; handle the Err or widen \
                    the type",
        skip_test_code: true,
        allowed_paths: &[],
        matcher: Matcher::CallThen {
            head: "try_into",
            tails: &["unwrap", "expect"],
        },
    },
    Rule {
        id: "U1",
        summary: "unsafe outside hostsched/src/sys.rs",
        rationale: "the workspace is dependency-free and fully safe except the hand-written \
                    syscall FFI, which is quarantined in one reviewed file",
        skip_test_code: false,
        allowed_paths: &["crates/hostsched/src/sys.rs"],
        matcher: Matcher::IdentAny(&["unsafe"]),
    },
    Rule {
        id: "K1",
        summary: "runqueue internals touched outside the kernel-policy layer",
        rationale: "the KernelPolicy refactor's bit-exactness guarantee holds because every \
                    runqueue mutation flows through the policy hooks; code that reaches into \
                    CfsRunqueue/RtRunqueue/EevdfRunqueue (or their tuning tables) from outside \
                    crates/sched/src/policy/ recreates the pre-refactor coupling the golden \
                    suite can no longer see",
        skip_test_code: true,
        allowed_paths: &["crates/sched/src/policy/"],
        matcher: Matcher::IdentAny(&[
            "CfsRunqueue",
            "RtRunqueue",
            "EevdfRunqueue",
            "NICE_TO_WEIGHT",
            "RR_TIMESLICE",
        ]),
    },
];

/// Look up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULESET.iter().find(|r| r.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_resolvable() {
        for (i, r) in RULESET.iter().enumerate() {
            assert!(rule_by_id(r.id).is_some());
            for other in &RULESET[i + 1..] {
                assert_ne!(r.id, other.id);
            }
        }
        assert!(rule_by_id("nope").is_none());
    }
}
