//! Extension: multi-server offloading of long functions (the paper's
//! stated future work, §VIII-A): a global dispatcher steering predicted
//! long functions to the lightest host of an SFS cluster.

use sfs_bench::{banner, save, section, Sweep};
use sfs_faas::{Cluster, Placement};
use sfs_metrics::MarkdownTable;
use sfs_simcore::Samples;
use sfs_workload::WorkloadSpec;

const HOSTS: usize = 4;
const CORES_PER_HOST: usize = 8;

fn main() {
    let n = sfs_bench::n_requests(10_000);
    let seed = sfs_bench::seed();
    banner(
        "Extension: cluster",
        "global long-function offloading across SFS hosts",
        n,
        seed,
    );

    let mut sweep = Sweep::new("extension_cluster", seed);
    for p in [
        Placement::RoundRobin,
        Placement::LeastLoaded,
        Placement::LongToLightest,
    ] {
        sweep.scenario(p.name(), move |_| {
            let w = WorkloadSpec::azure_sampled(n, seed)
                .with_load(HOSTS * CORES_PER_HOST, 1.0)
                .generate();
            Cluster::new(HOSTS, CORES_PER_HOST).run(p, &w)
        });
    }
    let results = sweep.run();

    let mut table = MarkdownTable::new(&[
        "placement",
        "short mean (ms)",
        "long mean (ms)",
        "long p99 (ms)",
        "per-host counts",
    ]);
    for r in &results {
        let run = &r.value;
        let mut long_samples = Samples::from_vec(
            run.outcomes
                .iter()
                .filter(|o| o.ideal.as_millis_f64() >= 1550.0)
                .map(|o| o.turnaround.as_millis_f64())
                .collect(),
        );
        table.row(&[
            r.label.clone(),
            format!("{:.1}", run.short_mean_ms()),
            format!("{:.1}", run.long_mean_ms()),
            format!("{:.1}", long_samples.percentile(99.0)),
            format!("{:?}", run.per_host),
        ]);
    }

    section("placement comparison at 100% cluster load");
    println!("{}", table.to_markdown());
    save("extension_cluster.csv", &table.to_csv());
    println!(
        "Reading: long-to-lightest should trim the long-function mean/p99\n\
         relative to round-robin without hurting the short population —\n\
         the mitigation the paper sketches for SFS's long-function penalty."
    );
}
