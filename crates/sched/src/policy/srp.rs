//! Preemption-ceiling (SRP-flavored) static-priority discipline, as a
//! [`KernelPolicy`].
//!
//! Every task maps to an *effective priority band*: real-time tasks land
//! at `100 + rt_prio` (100..=199), normal tasks at `20 − nice`
//! (1..=40). A single machine-global priority queue serves the highest
//! band first; dispatched tasks run **to block** (no timeslice), and an
//! arriving task preempts only when its band exceeds both the victim's
//! band *and* the system ceiling — the top of the normal band (40). The
//! ceiling is the Stack Resource Policy idea collapsed to a static
//! system-wide value: the whole normal band is one non-preemptible
//! resource group, so normal tasks never preempt each other (bounding
//! context switches like SRP bounds blocking), while the RT bands sit
//! above the ceiling and preempt freely. A preempted task resumes ahead
//! of its band peers (stack discipline: last preempted, first resumed).

use sfs_simcore::SimDuration;

use crate::policy::rt::RtRunqueue;
use crate::policy::{KernelCtx, KernelPolicy, Placed, PreemptKind};
use crate::task::{Pid, Policy};

/// The system ceiling: the top of the normal band. Only tasks strictly
/// above it (the RT bands) ever preempt a running task.
const CEILING: u8 = 40;

/// Effective priority band of a task under SRP.
fn eff_prio(policy: Policy) -> u8 {
    match policy {
        Policy::Fifo { prio } | Policy::Rr { prio } => 100 + prio.min(99),
        // nice −20..=19 → band 40..=1: lower nice, higher band.
        Policy::Normal { nice } => (20 - i16::from(nice)) as u8,
    }
}

/// Ceiling-gated static-priority policy over one global band queue.
#[derive(Debug, Default)]
pub struct SrpPolicy {
    rq: RtRunqueue,
}

impl SrpPolicy {
    /// An SRP policy (core count is irrelevant: one global queue).
    pub fn new() -> SrpPolicy {
        SrpPolicy::default()
    }
}

impl KernelPolicy for SrpPolicy {
    fn name(&self) -> &'static str {
        "srp"
    }

    fn enqueue(&mut self, ctx: &mut KernelCtx<'_>, pid: Pid) -> Placed {
        let eff = eff_prio(ctx.policy_of(pid));
        self.rq.push_back(pid, eff);
        if let Some(idle) = (0..ctx.nr_cores()).find(|&i| ctx.current(i).is_none()) {
            return Placed::RescheduleIdle(idle);
        }
        // Victim: the lowest-band running task (lowest core index among
        // ties). Preempt only above both its band and the ceiling.
        let (vc, veff) = (0..ctx.nr_cores())
            .map(|i| {
                let vpid = ctx.current(i).expect("no idle cores");
                (i, eff_prio(ctx.policy_of(vpid)))
            })
            .min_by_key(|&(_, e)| e)
            .expect("at least one core");
        if eff > veff.max(CEILING) {
            Placed::Preempt(vc)
        } else {
            Placed::Queued
        }
    }

    fn dequeue(&mut self, _ctx: &mut KernelCtx<'_>, pid: Pid) {
        self.rq.remove(pid);
    }

    fn pick_next(&mut self, _ctx: &mut KernelCtx<'_>, _core: usize) -> Option<Pid> {
        self.rq.pop().map(|(pid, _)| pid)
    }

    fn requeue_preempted(
        &mut self,
        ctx: &mut KernelCtx<'_>,
        _core: usize,
        pid: Pid,
        _why: PreemptKind,
    ) {
        // Stack discipline: the preempted task resumes before its peers.
        self.rq.push_front(pid, eff_prio(ctx.policy_of(pid)));
    }

    fn slice_for(&mut self, _ctx: &mut KernelCtx<'_>, _core: usize, _pid: Pid) -> SimDuration {
        SimDuration::MAX // run to block
    }

    fn task_tick(&mut self, _ctx: &mut KernelCtx<'_>, _core: usize, _pid: Pid, _ran: SimDuration) {}

    fn has_competition(&self, _ctx: &KernelCtx<'_>, _core: usize) -> bool {
        // Unreachable: run-to-block slices never expire.
        false
    }

    fn has_waiters(&self, _ctx: &KernelCtx<'_>) -> bool {
        !self.rq.is_empty()
    }

    fn queue_depth(&self, _core: usize) -> usize {
        0
    }

    fn rt_depth(&self) -> usize {
        self.rq.len()
    }

    fn queued_places(&self, pid: Pid) -> usize {
        usize::from(self.rq.contains(pid))
    }
}
