//! Statistics primitives for experiment harnesses.
//!
//! * [`OnlineStats`] — Welford mean/variance with min/max, O(1) per sample.
//! * [`Samples`] — an exact sample store with percentile queries (the paper's
//!   figures report p50..p99.99, Fig. 8/15, so exactness matters at the tail).
//! * [`Cdf`] — empirical CDF extraction at fixed fractions or value grids,
//!   used by every "CDF of duration / RTE" figure.
//! * [`Histogram`] — log-scale bucketing for quick distribution summaries.

/// Online mean / variance / extrema accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN-free; +inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exact sample store with percentile and CDF queries.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    data: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// Empty store.
    pub fn new() -> Self {
        Samples {
            data: Vec::new(),
            sorted: true,
        }
    }

    /// Empty store with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Samples {
            data: Vec::with_capacity(cap),
            sorted: true,
        }
    }

    /// Build from an existing vector of samples.
    pub fn from_vec(data: Vec<f64>) -> Self {
        Samples {
            data,
            sorted: false,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.data.push(x);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True iff no observations recorded.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // Total order so a single degenerate NaN sample cannot panic a
            // multi-minute run: NaN sorts after every number (+inf included),
            // so finite-quantile queries stay meaningful and only queries
            // that genuinely reach into the NaN tail observe it.
            self.data.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The `q`-quantile (q in `[0,1]`) via nearest-rank on the sorted samples.
    /// Returns 0.0 for an empty store.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank with an epsilon guard so e.g. 0.999 × 1000 (which
        // floats represent as 999.0000000000001) does not round up a rank.
        let idx = (((q * self.data.len() as f64) - 1e-9).ceil().max(0.0) as usize)
            .saturating_sub(1)
            .min(self.data.len() - 1);
        self.data[idx]
    }

    /// Convenience: percentile in `[0,100]`.
    pub fn percentile(&mut self, p: f64) -> f64 {
        self.quantile(p / 100.0)
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// Fraction of samples strictly below `x`.
    pub fn fraction_below(&mut self, x: f64) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let idx = self.data.partition_point(|&v| v < x);
        idx as f64 / self.data.len() as f64
    }

    /// Fraction of samples `>= x`.
    pub fn fraction_at_least(&mut self, x: f64) -> f64 {
        1.0 - self.fraction_below(x)
    }

    /// Empirical CDF evaluated at `points` evenly spaced quantiles,
    /// returned as `(value, cumulative_fraction)` pairs.
    pub fn cdf(&mut self, points: usize) -> Cdf {
        self.ensure_sorted();
        let mut pts = Vec::with_capacity(points);
        if self.data.is_empty() {
            return Cdf { points: pts };
        }
        for i in 1..=points {
            let frac = i as f64 / points as f64;
            let idx = (((frac * self.data.len() as f64) - 1e-9).ceil().max(0.0) as usize)
                .saturating_sub(1)
                .min(self.data.len() - 1);
            pts.push((self.data[idx], frac));
        }
        Cdf { points: pts }
    }

    /// Borrow the raw (possibly unsorted) samples.
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Consume into the raw vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }
}

/// A streaming quantile sketch with a bounded relative-error contract.
///
/// DDSketch-style log-bucketed histogram over non-negative values: bucket
/// `k` covers `(γ^(k-1), γ^k]` with `γ = (1+α)/(1−α)`, so reporting the
/// geometric midpoint of the covering bucket guarantees
///
/// > `|quantile(q) − exact_nearest_rank(q)| ≤ α · exact_nearest_rank(q)`
///
/// for every `q` — a *relative* error bound of `α` (default 1%) at any
/// rank, tails included. Memory is O(log(max/min)/α), independent of how
/// many values are recorded: ~2.8k buckets cover twelve decades at the
/// default `α`, where an exact [`Samples`] store for a 10M-request run
/// would hold 80 MB per metric. Values at or below [`QuantileSketch::FLOOR`]
/// (and, in release builds, NaN) collapse into a zero bucket reported
/// as 0.0.
///
/// Count, sum, mean, min and max are tracked exactly. Sketches with the
/// same `α` merge losslessly (the bound still holds after
/// [`QuantileSketch::merge`]).
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    alpha: f64,
    /// `ln γ`, cached: bucket key of `v` is `ceil(ln v / ln γ)`.
    gamma_ln: f64,
    /// Bucket counts; `buckets[i]` is the count for key `offset + i`.
    buckets: std::collections::VecDeque<u64>,
    /// Key of `buckets[0]` (meaningless while `buckets` is empty).
    offset: i64,
    /// Values in `[0, FLOOR]` (and release-mode NaN), reported as 0.0.
    zero_count: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(Self::DEFAULT_ALPHA)
    }
}

impl QuantileSketch {
    /// Default relative-error bound: 1%.
    pub const DEFAULT_ALPHA: f64 = 0.01;
    /// Values at or below this land in the zero bucket (reported as 0.0).
    pub const FLOOR: f64 = 1e-12;

    /// Empty sketch with relative-error bound `alpha` (in `(0, 1)`).
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0, 1), got {alpha}"
        );
        let gamma = (1.0 + alpha) / (1.0 - alpha);
        QuantileSketch {
            alpha,
            gamma_ln: gamma.ln(),
            buckets: std::collections::VecDeque::new(),
            offset: 0,
            zero_count: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The relative-error bound `α` this sketch guarantees.
    pub fn relative_error_bound(&self) -> f64 {
        self.alpha
    }

    /// Bucket key of a value above the floor: `ceil(ln v / ln γ)`.
    fn key_of(&self, x: f64) -> i64 {
        (x.ln() / self.gamma_ln).ceil() as i64
    }

    /// Record one observation. The sketch is defined over non-negative
    /// finite values; NaN and negatives are a caller bug (debug-asserted)
    /// and degrade to the zero bucket in release builds rather than
    /// poisoning the sketch.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "QuantileSketch::push(NaN)");
        debug_assert!(x >= 0.0, "QuantileSketch::push({x}): negative value");
        let x = if x.is_nan() { 0.0 } else { x.max(0.0) };
        self.count += 1;
        self.sum += x;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
        if x <= Self::FLOOR {
            self.zero_count += 1;
            return;
        }
        let key = self.key_of(x);
        if self.buckets.is_empty() {
            self.offset = key;
            self.buckets.push_back(1);
            return;
        }
        if key < self.offset {
            for _ in key..self.offset {
                self.buckets.push_front(0);
            }
            self.offset = key;
        } else if key >= self.offset + self.buckets.len() as i64 {
            for _ in (self.offset + self.buckets.len() as i64)..=key {
                self.buckets.push_back(0);
            }
        }
        self.buckets[(key - self.offset) as usize] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True iff no observations recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact smallest observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Exact largest observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `q`-quantile (q in `[0,1]`), within `α` relative error of the
    /// exact nearest-rank answer ([`Samples::quantile`] semantics).
    /// Returns 0.0 for an empty sketch.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Same nearest-rank (and epsilon guard) as Samples::quantile, so
        // the two agree bucket-for-bucket on the rank they answer for.
        let rank = (((q * self.count as f64) - 1e-9).ceil().max(1.0) as u64).min(self.count);
        let mut acc = self.zero_count;
        if rank <= acc {
            return 0.0;
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= rank {
                let key = self.offset + i as i64;
                // Geometric midpoint of (γ^(k-1), γ^k]: worst-case relative
                // error (γ−1)/(γ+1) = α. Clamp to the exact extrema so
                // q=0 / q=1 are exact.
                let gamma = (1.0 + self.alpha) / (1.0 - self.alpha);
                let mid = 2.0 * ((key as f64) * self.gamma_ln).exp() / (gamma + 1.0);
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience: percentile in `[0,100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        self.quantile(p / 100.0)
    }

    /// Merge another sketch into this one (parallel reduction). Both must
    /// share the same `α`; the error bound is preserved.
    pub fn merge(&mut self, other: &QuantileSketch) {
        assert!(
            (self.alpha - other.alpha).abs() < 1e-12,
            "cannot merge sketches with different error bounds"
        );
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.zero_count += other.zero_count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (i, &c) in other.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let key = other.offset + i as i64;
            if self.buckets.is_empty() {
                self.offset = key;
                self.buckets.push_back(c);
                continue;
            }
            if key < self.offset {
                for _ in key..self.offset {
                    self.buckets.push_front(0);
                }
                self.offset = key;
            } else if key >= self.offset + self.buckets.len() as i64 {
                for _ in (self.offset + self.buckets.len() as i64)..=key {
                    self.buckets.push_back(0);
                }
            }
            self.buckets[(key - self.offset) as usize] += c;
        }
    }

    /// Number of live buckets — O(log(max/min)/α), *not* O(count). Exposed
    /// so memory-bound tests can pin the O(1)-in-request-count contract.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len() + 1
    }
}

/// An empirical CDF: monotonically non-decreasing `(value, fraction)` pairs.
#[derive(Debug, Clone)]
pub struct Cdf {
    /// `(value, cumulative fraction)` pairs, ascending in both components.
    pub points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Render as CSV lines `value,fraction`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("value,fraction\n");
        for (v, f) in &self.points {
            out.push_str(&format!("{v},{f}\n"));
        }
        out
    }
}

/// A log-scale histogram over positive values.
///
/// Buckets are powers of `base` starting at `min_value`; anything below the
/// first bucket lands in bucket 0, anything above the last in the final
/// bucket. Suits the paper's duration data spanning seven orders of magnitude.
#[derive(Debug, Clone)]
pub struct Histogram {
    min_value: f64,
    base: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// `buckets` log-spaced buckets of ratio `base` starting at `min_value`.
    pub fn new(min_value: f64, base: f64, buckets: usize) -> Self {
        assert!(min_value > 0.0 && base > 1.0 && buckets > 0);
        Histogram {
            min_value,
            base,
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// Bucket index for a value.
    fn bucket_of(&self, x: f64) -> usize {
        if x <= self.min_value {
            return 0;
        }
        let b = ((x / self.min_value).ln() / self.base.ln()).floor() as usize;
        b.min(self.counts.len() - 1)
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        let b = self.bucket_of(x);
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterate `(bucket_lower_bound, count)` pairs.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.min_value * self.base.powi(i as i32), c))
    }

    /// Fraction of observations at or below the upper edge of bucket `i`.
    pub fn cumulative_fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let c: u64 = self.counts[..=i.min(self.counts.len() - 1)].iter().sum();
        c as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..400] {
            a.push(x);
        }
        for &x in &xs[400..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.count(), a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!(before, (a.count(), a.mean(), a.variance()));

        let mut e = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.push(5.0);
        e.merge(&b);
        assert_eq!(e.count(), 1);
        assert_eq!(e.mean(), 5.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut s = Samples::from_vec((1..=100).map(|i| i as f64).collect());
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(90.0), 90.0);
        assert_eq!(s.percentile(99.0), 99.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.quantile(0.001), 1.0);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let mut s = Samples::new();
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn fraction_below_and_at_least() {
        let mut s = Samples::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!((s.fraction_below(3.0) - 0.4).abs() < 1e-12);
        assert!((s.fraction_below(3.5) - 0.6).abs() < 1e-12);
        assert!((s.fraction_at_least(3.0) - 0.6).abs() < 1e-12);
        assert_eq!(s.fraction_below(0.0), 0.0);
        assert_eq!(s.fraction_below(100.0), 1.0);
    }

    #[test]
    fn cdf_is_monotone_and_complete() {
        let mut s = Samples::from_vec((0..977).map(|i| (i * 7 % 977) as f64).collect());
        let cdf = s.cdf(100);
        assert_eq!(cdf.points.len(), 100);
        for w in cdf.points.windows(2) {
            assert!(w[0].0 <= w[1].0, "values must be non-decreasing");
            assert!(w[0].1 < w[1].1, "fractions must be increasing");
        }
        assert!((cdf.points.last().unwrap().1 - 1.0).abs() < 1e-12);
        let csv = cdf.to_csv();
        assert!(csv.starts_with("value,fraction\n"));
        assert_eq!(csv.lines().count(), 101);
    }

    #[test]
    fn nan_sample_does_not_panic_quantiles() {
        // Regression: ensure_sorted used partial_cmp().expect(), so one NaN
        // (e.g. a degenerate 0/0 ratio) panicked the whole run at report
        // time. total_cmp sorts NaN after every number instead.
        let mut s = Samples::from_vec(vec![3.0, f64::NAN, 1.0, 2.0]);
        assert_eq!(s.quantile(0.5), 2.0);
        assert_eq!(s.quantile(0.0), 1.0);
        // Only a query that reaches into the NaN tail observes it.
        assert!(s.quantile(1.0).is_nan());
        assert!((s.fraction_below(2.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sketch_quantiles_within_alpha_of_exact() {
        let alpha = 0.01;
        let mut sk = QuantileSketch::new(alpha);
        let mut exact = Samples::new();
        // Log-uniform spread over 6 decades, worst case for bucketing.
        for i in 0..10_000 {
            let v = 10f64.powf((i % 6000) as f64 / 1000.0) * (1.0 + (i as f64) * 1e-7);
            sk.push(v);
            exact.push(v);
        }
        for q in [0.0, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999, 0.9999, 1.0] {
            let e = exact.quantile(q);
            let a = sk.quantile(q);
            assert!(
                (a - e).abs() <= alpha * e + 1e-12,
                "q={q}: sketch {a} vs exact {e} breaks the {alpha} bound"
            );
        }
        assert_eq!(sk.count(), 10_000);
        assert!((sk.mean() - exact.mean()).abs() < 1e-9 * exact.mean());
    }

    #[test]
    fn sketch_zero_and_extrema_are_exact() {
        let mut sk = QuantileSketch::default();
        sk.push(0.0);
        sk.push(5.0);
        sk.push(1000.0);
        assert_eq!(sk.quantile(0.0), 0.0);
        assert_eq!(sk.min(), 0.0);
        assert_eq!(sk.max(), 1000.0);
        // q=1 clamps to the exact max.
        assert_eq!(sk.quantile(1.0), 1000.0);
        assert!(sk.quantile(0.34) > 0.0);
        let empty = QuantileSketch::default();
        assert_eq!(empty.quantile(0.5), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn sketch_merge_matches_single_stream() {
        let mut whole = QuantileSketch::default();
        let mut a = QuantileSketch::default();
        let mut b = QuantileSketch::default();
        for i in 0..4000 {
            let v = ((i * 37 % 4001) as f64).powf(1.3) + 0.5;
            whole.push(v);
            if i % 2 == 0 {
                a.push(v);
            } else {
                b.push(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(
                a.quantile(q),
                whole.quantile(q),
                "merged sketch must be bucket-identical to single-stream"
            );
        }
    }

    #[test]
    fn sketch_memory_is_bounded_by_value_range_not_count() {
        let mut sk = QuantileSketch::default();
        for i in 0..200_000u64 {
            sk.push(0.001 + (i % 1000) as f64);
        }
        // Three decades of values at alpha=1% is a few hundred buckets no
        // matter how many samples stream through.
        assert!(
            sk.bucket_count() < 1000,
            "bucket count {} grew past the value-range bound",
            sk.bucket_count()
        );
    }

    #[test]
    fn histogram_buckets_log_scale() {
        let mut h = Histogram::new(1.0, 10.0, 7);
        for x in [0.5, 1.0, 5.0, 50.0, 500.0, 5e3, 5e4, 5e5, 5e6, 5e9] {
            h.record(x);
        }
        assert_eq!(h.total(), 10);
        let buckets: Vec<(f64, u64)> = h.buckets().collect();
        assert_eq!(buckets.len(), 7);
        // 0.5 and 1.0 and 5.0 fall in bucket 0 ([1,10)): values <= min go to 0.
        assert_eq!(buckets[0].1, 3);
        // 5e9 overflows into the last bucket.
        assert_eq!(buckets[6].1, 2);
        assert!((h.cumulative_fraction(6) - 1.0).abs() < 1e-12);
    }
}
