//! `simlint` — run the workspace determinism/panic-safety lint.
//!
//! ```text
//! simlint [--root DIR] [--json PATH] [--rules] [--verbose] [--quiet]
//! ```
//!
//! Walks the workspace (default: the nearest ancestor of the current
//! directory whose `Cargo.toml` declares `[workspace]`), prints a human
//! findings table, optionally writes the machine-readable findings list
//! as JSON, and exits 0 (clean), 1 (findings), or 2 (usage/IO error).

use std::path::PathBuf;
use std::process::ExitCode;

use sfs_lint::{report, rules, walk};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<PathBuf> = None;
    let mut verbose = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => return usage("--json needs a path"),
            },
            "--rules" => {
                for r in rules::RULESET {
                    println!("{:>3}  {}", r.id, r.summary);
                    println!("     {}", r.rationale);
                    if !r.allowed_paths.is_empty() {
                        println!("     allowed in: {}", r.allowed_paths.join(", "));
                    }
                }
                return ExitCode::SUCCESS;
            }
            "--verbose" | "-v" => verbose = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| walk::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("simlint: no workspace root found (pass --root DIR)");
            return ExitCode::from(2);
        }
    };

    let scan = match sfs_lint::scan_workspace(&root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("simlint: scan failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &json {
        if let Err(e) = std::fs::write(path, report::findings_json(&scan.findings)) {
            eprintln!("simlint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if !scan.findings.is_empty() {
        print!("{}", report::human_table(&scan.findings));
    }
    if verbose && !scan.suppressed.is_empty() {
        println!("-- suppressed by reasoned allows --");
        print!("{}", report::human_table(&scan.suppressed));
    }
    if !quiet {
        println!(
            "{}",
            report::summary_line(scan.findings.len(), scan.suppressed.len(), scan.files)
        );
    }
    if scan.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("simlint: {err}");
    }
    eprintln!("usage: simlint [--root DIR] [--json PATH] [--rules] [--verbose] [--quiet]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
