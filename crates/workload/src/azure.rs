//! Synthetic Azure Functions duration population (Fig. 1).
//!
//! The paper's Fig. 1 plots the CDF of per-function average execution
//! duration across the two-week Azure Functions 2019 trace, observing that
//! durations span seven orders of magnitude and that ~37.2%, 57.2%, and
//! 99.9% of functions finish within 300 ms, 1 s, and 224 s respectively.
//!
//! The raw trace is not available offline, so this module synthesises a
//! population from a piecewise log-linear quantile function anchored at the
//! paper's published points. Sampling inverts the CDF directly, so the
//! anchor fractions are reproduced *exactly* in expectation — which the
//! tests verify, and which `fig01_azure_cdf` plots.

use sfs_simcore::{Samples, SimRng};

/// `(duration_ms, cumulative_fraction)` anchors of the Azure duration CDF.
/// Points between anchors are interpolated log-linearly in duration.
pub const AZURE_CDF_ANCHORS: [(f64, f64); 10] = [
    (0.1, 0.0),
    (1.0, 0.015),
    (10.0, 0.09),
    (100.0, 0.24),
    (300.0, 0.372),
    (1_000.0, 0.572),
    (10_000.0, 0.905),
    (100_000.0, 0.986),
    (224_000.0, 0.999),
    (1_000_000.0, 1.0),
];

/// Invert the anchored CDF at cumulative fraction `u ∈ [0,1)`.
pub fn quantile_ms(u: f64) -> f64 {
    let u = u.clamp(0.0, 1.0);
    let a = AZURE_CDF_ANCHORS;
    for w in a.windows(2) {
        let (d0, f0) = w[0];
        let (d1, f1) = w[1];
        if u <= f1 {
            if (f1 - f0).abs() < 1e-12 {
                return d1;
            }
            let t = (u - f0) / (f1 - f0);
            return (d0.ln() + t * (d1.ln() - d0.ln())).exp();
        }
    }
    a.last().unwrap().0
}

/// The CDF value at a duration (forward direction), for verification.
pub fn cdf_at(duration_ms: f64) -> f64 {
    let a = AZURE_CDF_ANCHORS;
    if duration_ms <= a[0].0 {
        return a[0].1;
    }
    for w in a.windows(2) {
        let (d0, f0) = w[0];
        let (d1, f1) = w[1];
        if duration_ms <= d1 {
            let t = (duration_ms.ln() - d0.ln()) / (d1.ln() - d0.ln());
            return f0 + t * (f1 - f0);
        }
    }
    1.0
}

/// Sample a population of `n` function durations (ms).
pub fn sample_population(n: usize, rng: &mut SimRng) -> Samples {
    let mut s = Samples::with_capacity(n);
    for _ in 0..n {
        s.push(quantile_ms(rng.unit()));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_are_monotone() {
        for w in AZURE_CDF_ANCHORS.windows(2) {
            assert!(w[0].0 < w[1].0, "durations ascending");
            assert!(w[0].1 <= w[1].1, "fractions non-decreasing");
        }
        assert_eq!(AZURE_CDF_ANCHORS.last().unwrap().1, 1.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for u in [0.01, 0.1, 0.3, 0.372, 0.5, 0.572, 0.9, 0.99, 0.999] {
            let d = quantile_ms(u);
            let back = cdf_at(d);
            assert!((back - u).abs() < 1e-9, "u={u} d={d} back={back}");
        }
    }

    #[test]
    fn paper_quantile_claims_hold() {
        // "about 37.2%, 57.2%, and 99.9% of the functions have an average
        //  execution duration shorter than 300 ms, 1 second, and 224 seconds"
        assert!((cdf_at(300.0) - 0.372).abs() < 1e-9);
        assert!((cdf_at(1_000.0) - 0.572).abs() < 1e-9);
        assert!((cdf_at(224_000.0) - 0.999).abs() < 1e-9);
    }

    #[test]
    fn population_spans_seven_orders_of_magnitude() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut pop = sample_population(200_000, &mut rng);
        let lo = pop.quantile(0.0005);
        let hi = pop.quantile(0.9995);
        assert!(
            hi / lo > 1e5,
            "span {lo}..{hi} should cover many orders of magnitude"
        );
        // Empirical fractions reproduce the anchors.
        assert!((pop.fraction_below(300.0) - 0.372).abs() < 0.01);
        assert!((pop.fraction_below(1_000.0) - 0.572).abs() < 0.01);
        assert!(pop.fraction_below(224_000.0) > 0.99);
    }
}
