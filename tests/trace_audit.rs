//! Schedule-trace audits: with tracing enabled, the recorded execution
//! segments must be mutually consistent with the machine's accounting —
//! the strongest end-to-end correctness check the simulator offers.

use sfs_repro::sched::{Machine, MachineParams, Pid, Policy, TaskSpec};
use sfs_repro::sfs::{SfsConfig, SfsController, Sim};
use sfs_repro::simcore::{SimDuration, SimTime};
use sfs_repro::workload::WorkloadSpec;

#[test]
fn trace_time_equals_charged_cpu_time() {
    let mut m = Machine::new(MachineParams {
        ctx_switch_cost: SimDuration::ZERO,
        ..MachineParams::linux(2)
    });
    m.enable_tracing();
    let mut pids = Vec::new();
    for i in 0..20u64 {
        pids.push(m.spawn(TaskSpec::cpu(i, SimDuration::from_millis(5 + i))));
    }
    m.run_until_quiescent();
    let trace = m.trace().expect("tracing enabled").clone();
    assert!(trace.find_overlap().is_none(), "cores double-booked");
    for (i, t) in m.finished().iter().enumerate() {
        assert_eq!(
            trace.task_time(Pid(i as u64)),
            t.cpu_time,
            "trace vs charge mismatch for task {i}"
        );
    }
    // Total busy time across cores equals total CPU demand.
    let busy = trace.core_busy(0) + trace.core_busy(1);
    let demand: SimDuration = m.finished().iter().map(|t| t.cpu_demand).sum();
    assert_eq!(busy, demand);
}

#[test]
fn sfs_trace_shows_filter_phases_as_rt_segments() {
    let w = WorkloadSpec::azure_sampled(300, 5)
        .with_load(4, 0.9)
        .generate();
    let r = Sim::on(MachineParams::linux(4))
        .workload(&w)
        .controller(SfsController::new(SfsConfig::new(4)))
        .tracing()
        .run();
    let trace = r.schedule_trace.expect("tracing requested");
    assert!(trace.find_overlap().is_none());
    let rt_segments = trace
        .segments()
        .iter()
        .filter(|s| s.policy.is_realtime())
        .count();
    let cfs_segments = trace.segments().len() - rt_segments;
    // FILTER rounds run as SCHED_FIFO: the trace must show a substantial RT
    // share, plus CFS segments from demoted long functions.
    assert!(
        rt_segments > 200,
        "expected FILTER (RT) segments, got {rt_segments}"
    );
    assert!(
        cfs_segments > 0,
        "expected demoted CFS segments, got {cfs_segments}"
    );
    for s in trace.segments() {
        if let Policy::Fifo { prio } = s.policy {
            assert_eq!(prio, SfsConfig::new(4).filter_prio, "FILTER priority");
        }
    }
}

#[test]
fn gantt_rendering_covers_the_run() {
    let mut m = Machine::new(MachineParams::linux(2));
    m.enable_tracing();
    m.spawn(TaskSpec::cpu(0, SimDuration::from_millis(40)));
    m.spawn(TaskSpec {
        phases: vec![sfs_repro::sched::Phase::Cpu(SimDuration::from_millis(40))],
        policy: Policy::Fifo { prio: 50 },
        label: 1,
    });
    m.run_until_quiescent();
    let g = m.trace().unwrap().render_gantt(SimTime::ZERO, m.now(), 60);
    assert!(g.contains("core 0") && g.contains("core 1"));
    // CFS task renders as its digit, RT task as a letter.
    assert!(g.contains('0'));
    assert!(g.contains('B'));
}
