//! Deterministic discrete-event queue.
//!
//! A thin wrapper around [`std::collections::BinaryHeap`] that orders events
//! by ascending timestamp and breaks ties by insertion order (FIFO). Stable
//! tie-breaking matters: simultaneous events (e.g. a slice expiry and an
//! arrival at the same nanosecond) must be processed in a reproducible order
//! for experiments to be bit-identical across runs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled at a [`SimTime`], carrying an arbitrary payload `E`.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event priority queue with deterministic ordering.
///
/// Events with equal timestamps pop in the order they were pushed.
///
/// # Example
/// ```
/// use sfs_simcore::{EventQueue, SimTime, SimDuration};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.push(SimTime::ZERO + SimDuration::from_millis(2), "second");
/// q.push(SimTime::ZERO + SimDuration::from_millis(1), "first");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(e, "first");
/// assert_eq!(t.as_millis_f64(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedule `payload` to fire at `at`.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Remove and return the earliest event as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// Remove and return the earliest event only if it fires at or before `t`.
    pub fn pop_until(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(at) if at <= t => self.pop(),
            _ => None,
        }
    }

    /// Pop every event firing at or before `t` into `out` (in time/FIFO
    /// order), returning how many were popped.
    ///
    /// This is the peek-based batch fast path for hot simulation loops:
    /// one bound comparison per event against a reusable output buffer,
    /// instead of a peek + pop call pair per event with a fresh allocation
    /// per step. `out` is appended to, not cleared — callers reuse one
    /// buffer across iterations (drain-and-reuse) so steady-state batch
    /// popping performs zero allocations.
    ///
    /// Only safe when event handlers never schedule new events at or
    /// before `t`; otherwise the incremental [`EventQueue::pop_until`]
    /// loop must be used so late insertions are observed.
    pub fn pop_batch_until(&mut self, t: SimTime, out: &mut Vec<(SimTime, E)>) -> usize {
        let before = out.len();
        while let Some(s) = self.heap.peek() {
            if s.at > t {
                break;
            }
            let s = self.heap.pop().expect("peeked event present");
            out.push((s.at, s.payload));
        }
        out.len() - before
    }

    /// Pending capacity of the internal heap (allocation retained across
    /// [`EventQueue::recycle`]).
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Reset the queue for a fresh run while keeping its allocation: all
    /// pending events are dropped and the FIFO sequence counter restarts,
    /// so a recycled queue behaves exactly like a new one — minus the
    /// reallocation. Trial loops that simulate many runs back to back use
    /// this to keep the event heap warm.
    pub fn recycle(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(at(30), 3);
        q.push(at(10), 1);
        q.push(at(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn simultaneous_events_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(at(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_until_respects_bound() {
        let mut q = EventQueue::new();
        q.push(at(10), "a");
        q.push(at(20), "b");
        assert_eq!(q.pop_until(at(15)).map(|(_, e)| e), Some("a"));
        assert_eq!(q.pop_until(at(15)), None);
        assert_eq!(q.pop_until(at(20)).map(|(_, e)| e), Some("b"));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(at(7), ());
        assert_eq!(q.peek_time(), Some(at(7)));
        assert_eq!(q.len(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn batch_pop_matches_incremental_and_reuses_buffer() {
        let mut q = EventQueue::new();
        for i in 0..6 {
            q.push(at(10 * (i % 3) as u64), i);
        }
        let mut out = Vec::new();
        assert_eq!(q.pop_batch_until(at(10), &mut out), 4);
        let evs: Vec<i32> = out.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, vec![0, 3, 1, 4], "time order then FIFO within ties");
        // Appends without clearing: the same buffer accumulates.
        assert_eq!(q.pop_batch_until(at(100), &mut out), 2);
        assert_eq!(out.len(), 6);
        assert!(q.is_empty());
        assert_eq!(q.pop_batch_until(at(100), &mut out), 0);
    }

    #[test]
    fn recycle_keeps_capacity_and_restarts_fifo_numbering() {
        let mut q = EventQueue::with_capacity(64);
        for i in 0..50 {
            q.push(at(1), i);
        }
        let cap = q.capacity();
        assert!(cap >= 50);
        q.recycle();
        assert!(q.is_empty());
        assert_eq!(q.capacity(), cap, "recycle must keep the allocation");
        // FIFO ordering restarts cleanly after recycling.
        q.push(at(5), 100);
        q.push(at(5), 200);
        assert_eq!(q.pop().unwrap().1, 100);
        assert_eq!(q.pop().unwrap().1, 200);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(at(5), 5);
        q.push(at(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(at(3), 3);
        q.push(at(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 5);
    }
}
