//! Seeded, reproducible randomness for workload generation.
//!
//! Every stochastic component (duration sampling, IAT generation, I/O jitter)
//! draws from a [`SimRng`] derived from an experiment-level master seed, so a
//! bench binary re-run with the same seed regenerates the exact same figure.
//!
//! The generator is a self-contained xoshiro256++ (public-domain algorithm by
//! Blackman & Vigna) seeded through SplitMix64, with the handful of
//! distributions the workloads need implemented on top — no external crates,
//! so the workspace builds hermetically.

/// A deterministic RNG with distribution helpers used across the workload
/// generator and scheduler substrates.
///
/// Streams are stable across runs and platforms: the same seed always
/// produces the same draw sequence.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    spare_normal: Option<f64>,
}

/// SplitMix64 step: expands a 64-bit seed into well-mixed state words.
#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Construct from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output (xoshiro256++ step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Derive an independent child RNG for a named sub-component.
    ///
    /// Mixes the label into the stream so two components seeded from the same
    /// parent do not observe correlated draws.
    pub fn derive(&mut self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::seed_from_u64(self.next_u64() ^ h)
    }

    /// Uniform draw in `[0, 1)` (half-open unit interval).
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits, the standard max-precision construction.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in the half-open range `lo..hi`. Requires `lo < hi`.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "uniform range must be non-empty");
        lo + self.unit() * (hi - lo)
    }

    /// Uniform integer draw in the inclusive range `lo..=hi`.
    #[inline]
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Rejection sampling over the largest multiple of (span+1) below
        // 2^64 keeps the draw exactly uniform.
        let n = span + 1;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let x = self.next_u64();
            if x < zone {
                return lo + x % n;
            }
        }
    }

    /// Exponential draw with the given mean (used for Poisson inter-arrivals).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0, "exponential mean must be positive");
        // Inverse-CDF; 1 - unit() is in (0, 1] so ln never sees zero.
        -mean * (1.0 - self.unit()).ln()
    }

    /// Standard normal draw (Box-Muller, with the second output cached).
    #[inline]
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let u1 = 1.0 - self.unit(); // (0, 1]: safe for ln
        let u2 = self.unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Log-normal draw parameterised by the *underlying* normal's mu/sigma.
    #[inline]
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        debug_assert!(sigma >= 0.0, "lognormal sigma must be non-negative");
        (mu + sigma * self.normal()).exp()
    }

    /// Pareto draw with minimum `scale` and tail index `alpha` (inverse
    /// CDF). Small `alpha` (≤ 2) gives the heavy tail used for cold-start
    /// penalty mixes; the mean is `scale·α/(α−1)` for `α > 1`.
    #[inline]
    pub fn pareto(&mut self, scale: f64, alpha: f64) -> f64 {
        debug_assert!(scale > 0.0 && alpha > 0.0, "pareto needs positive params");
        // 1 - unit() is in (0, 1] so the power never divides by zero.
        scale * (1.0 - self.unit()).powf(-1.0 / alpha)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Pick an index from a discrete probability table (weights need not sum
    /// to exactly 1; the last bucket absorbs rounding residue).
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().sum();
        let mut x = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let xa: Vec<u64> = (0..16).map(|_| a.unit().to_bits()).collect();
        let xb: Vec<u64> = (0..16).map(|_| b.unit().to_bits()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn derived_children_are_independent_and_deterministic() {
        let mut p1 = SimRng::seed_from_u64(7);
        let mut p2 = SimRng::seed_from_u64(7);
        let mut c1 = p1.derive("durations");
        let mut c2 = p2.derive("durations");
        assert_eq!(c1.unit().to_bits(), c2.unit().to_bits());

        let mut p3 = SimRng::seed_from_u64(7);
        let mut d = p3.derive("iat");
        // Different label, same parent state: streams should differ.
        let mut p4 = SimRng::seed_from_u64(7);
        let mut e = p4.derive("durations");
        assert_ne!(d.unit().to_bits(), e.unit().to_bits());
    }

    #[test]
    fn exponential_mean_is_approximately_right() {
        let mut r = SimRng::seed_from_u64(3);
        let n = 200_000;
        let mean = 25.0;
        let total: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let observed = total / n as f64;
        assert!(
            (observed - mean).abs() / mean < 0.02,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn normal_moments_are_approximately_right() {
        let mut r = SimRng::seed_from_u64(5);
        let n = 200_000;
        let draws: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "normal mean {mean} not ~0");
        assert!((var - 1.0).abs() < 0.02, "normal variance {var} not ~1");
    }

    #[test]
    fn lognormal_median_matches_exp_mu() {
        let mut r = SimRng::seed_from_u64(17);
        let n = 100_001;
        let mut draws: Vec<f64> = (0..n).map(|_| r.lognormal(2.0, 0.7)).collect();
        draws.sort_by(|a, b| a.total_cmp(b));
        let median = draws[n / 2];
        let expected = 2.0f64.exp();
        assert!(
            (median - expected).abs() / expected < 0.03,
            "lognormal median {median} far from {expected}"
        );
        assert!(draws.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn pareto_bounds_and_mean() {
        let mut r = SimRng::seed_from_u64(23);
        let n = 400_000;
        let (scale, alpha) = (50.0, 3.0);
        let mut total = 0.0;
        for _ in 0..n {
            let x = r.pareto(scale, alpha);
            assert!(x >= scale, "pareto below scale: {x}");
            total += x;
        }
        let expected = scale * alpha / (alpha - 1.0);
        let observed = total / n as f64;
        assert!(
            (observed - expected).abs() / expected < 0.02,
            "pareto mean {observed} far from {expected}"
        );
    }

    #[test]
    fn pick_weighted_respects_probabilities() {
        let mut r = SimRng::seed_from_u64(9);
        let weights = [0.5, 0.3, 0.2];
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[r.pick_weighted(&weights)] += 1;
        }
        for (c, w) in counts.iter().zip(weights.iter()) {
            let frac = *c as f64 / n as f64;
            assert!(
                (frac - w).abs() < 0.02,
                "bucket frequency {frac} deviates from weight {w}"
            );
        }
    }

    #[test]
    fn uniform_bounds_hold() {
        let mut r = SimRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x = r.uniform(10.0, 100.0);
            assert!((10.0..100.0).contains(&x));
            let y = r.uniform_u64(3, 7);
            assert!((3..=7).contains(&y));
        }
    }

    #[test]
    fn uniform_u64_covers_full_and_degenerate_ranges() {
        let mut r = SimRng::seed_from_u64(19);
        assert_eq!(r.uniform_u64(5, 5), 5);
        // Full-range draw must not hang or panic.
        let _ = r.uniform_u64(0, u64::MAX);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(13);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range p is clamped, not a panic.
        assert!(r.chance(2.0));
        assert!(!r.chance(-1.0));
    }
}
