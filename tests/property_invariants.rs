//! Property-style invariants over randomly generated workloads and
//! scheduler configurations: nothing is lost, time is conserved, and the
//! metrics stay in range, for every scheduling policy.
//!
//! Randomised cases come from the workspace's seeded `SimRng` (no proptest
//! dependency): each test runs a fixed number of cases from a fixed seed,
//! so failures are exactly reproducible.

use sfs_repro::sched::{run_open_loop, KernelPolicyKind, MachineParams, Phase, Policy, TaskSpec};
use sfs_repro::sfs::{Baseline, ControllerFactory, RequestOutcome, SfsConfig, SfsController, Sim};
use sfs_repro::simcore::{SimDuration, SimRng, SimTime};
use sfs_repro::workload::{DurationDist, IatSpec, Workload, WorkloadSpec};

fn run_baseline(b: Baseline, cores: usize, w: &Workload) -> Vec<RequestOutcome> {
    b.run_on(cores, w).outcomes
}

fn case_rng(test: &str, case: u64) -> SimRng {
    SimRng::seed_from_u64(0x1AB5)
        .derive(test)
        .derive(&case.to_string())
}

/// A small random task mix with optional I/O phases.
fn arb_tasks(rng: &mut SimRng) -> Vec<(u64, TaskSpec)> {
    let n = rng.uniform_u64(1, 39) as usize;
    let mut at = 0u64;
    (0..n)
        .map(|i| {
            at += rng.uniform_u64(1, 599);
            let cpu = rng.uniform_u64(1, 399);
            let io = rng.uniform_u64(0, 79);
            let mut phases = Vec::new();
            if io > 0 {
                phases.push(Phase::Io(SimDuration::from_millis(io)));
            }
            phases.push(Phase::Cpu(SimDuration::from_millis(cpu)));
            let policy = match rng.uniform_u64(0, 2) {
                0 => Policy::NORMAL,
                1 => Policy::Fifo { prio: 50 },
                _ => Policy::Rr { prio: 50 },
            };
            (
                at,
                TaskSpec {
                    phases,
                    policy,
                    label: i as u64,
                },
            )
        })
        .collect()
}

#[test]
fn machine_conserves_work_and_loses_nothing() {
    for case in 0..48 {
        let mut rng = case_rng("machine_conserves", case);
        let tasks = arb_tasks(&mut rng);
        let cores = rng.uniform_u64(1, 4) as usize;
        let srtf = rng.chance(0.5);
        let n = tasks.len();
        let total_cpu: u64 = tasks.iter().map(|(_, s)| s.cpu_demand().as_nanos()).sum();
        let params = MachineParams {
            cores,
            ctx_switch_cost: SimDuration::ZERO,
            kpolicy: if srtf {
                KernelPolicyKind::Srtf
            } else {
                KernelPolicyKind::Cfs
            },
            ..Default::default()
        };
        let arrivals = tasks
            .into_iter()
            .map(|(ms, s)| (SimTime::ZERO + SimDuration::from_millis(ms), s));
        let done = run_open_loop(params, arrivals);
        assert_eq!(done.len(), n, "lost tasks (case {case})");
        let charged: u64 = done.iter().map(|t| t.cpu_time.as_nanos()).sum();
        assert_eq!(charged, total_cpu, "CPU time not conserved (case {case})");
        for t in &done {
            assert!(t.finished >= t.arrival, "case {case}");
            assert!(
                t.turnaround() >= t.ideal,
                "task {} beat ideal (case {case})",
                t.pid
            );
            assert!(t.rte() > 0.0 && t.rte() <= 1.0, "case {case}");
            assert!(
                t.first_run.is_some(),
                "task {} never ran (case {case})",
                t.pid
            );
        }
    }
}

#[test]
fn sfs_completes_arbitrary_workloads() {
    for case in 0..48 {
        let mut rng = case_rng("sfs_completes", case);
        let n = rng.uniform_u64(20, 149) as usize;
        let seed = rng.uniform_u64(0, 999);
        let load = rng.uniform(0.3, 1.1);
        let cores = rng.uniform_u64(2, 6) as usize;
        let io_fraction = rng.uniform(0.0, 0.9);
        let fixed_slice = if rng.chance(0.5) {
            Some(rng.uniform_u64(20, 299))
        } else {
            None
        };
        let mut spec = WorkloadSpec::azure_sampled(n, seed);
        spec.io_fraction = io_fraction;
        let w = spec.with_load(cores, load).generate();
        let mut cfg = SfsConfig::new(cores);
        if let Some(ms) = fixed_slice {
            cfg = cfg.with_fixed_slice(ms);
        }
        let r = Sim::on(MachineParams::linux(cores))
            .workload(&w)
            .controller(SfsController::new(cfg))
            .run();
        assert_eq!(r.outcomes.len(), n, "case {case}");
        for o in &r.outcomes {
            assert!(o.rte > 0.0 && o.rte <= 1.0, "case {case}");
            assert!(
                o.turnaround.as_nanos() + 1_000 >= o.ideal.as_nanos(),
                "case {case}"
            );
        }
        // Offload + demotion counts can never exceed the request count…
        assert!(r.telemetry.offloaded <= n as u64, "case {case}");
        // …though a request may be demoted after several I/O rounds.
        assert!(
            r.telemetry.polls == 0 || r.telemetry.polled_tasks > 0 || io_fraction == 0.0,
            "case {case}"
        );
    }
}

#[test]
fn baselines_agree_on_totals() {
    for case in 0..32 {
        let mut rng = case_rng("baselines_totals", case);
        let n = rng.uniform_u64(20, 119) as usize;
        let seed = rng.uniform_u64(0, 499);
        let w = WorkloadSpec {
            durations: DurationDist::LogUniform {
                lo_ms: 2.0,
                hi_ms: 500.0,
            },
            iat: IatSpec::Poisson { mean_ms: 30.0 },
            ..WorkloadSpec::azure_sampled(n, seed)
        }
        .generate();
        let total_demand: f64 = w.total_cpu_ms();
        for b in [Baseline::Cfs, Baseline::Fifo, Baseline::Rr, Baseline::Srtf] {
            let outs = run_baseline(b, 3, &w);
            assert_eq!(outs.len(), n, "case {case}");
            let sum: f64 = outs.iter().map(|o| o.cpu_demand.as_millis_f64()).sum();
            assert!(
                (sum - total_demand).abs() < 1e-3,
                "{} demand mismatch (case {case})",
                b.name()
            );
        }
    }
}

#[test]
fn determinism_across_policies() {
    for case in 0..24 {
        let mut rng = case_rng("determinism", case);
        let n = rng.uniform_u64(10, 59) as usize;
        let seed = rng.uniform_u64(0, 199);
        let w = WorkloadSpec::azure_sampled(n, seed)
            .with_load(4, 0.9)
            .generate();
        for b in [Baseline::Cfs, Baseline::Srtf] {
            let a = run_baseline(b, 4, &w);
            let bb = run_baseline(b, 4, &w);
            for (x, y) in a.iter().zip(bb.iter()) {
                assert_eq!(x.finished, y.finished, "case {case}");
                assert_eq!(x.ctx_switches, y.ctx_switches, "case {case}");
            }
        }
    }
}
