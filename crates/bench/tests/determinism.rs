//! Thread-count determinism suite.
//!
//! The parallel sweep engine's core guarantee: the same seed produces
//! bit-identical results at 1, 2, and 8 worker threads. Verified both at
//! the aggregate level (the exact metric report, IEEE-754 bits included)
//! and per request (an FNV fingerprint over every outcome field).

mod support;

use sfs_bench::Sweep;
use sfs_simcore::parallel;

/// Same seed, same numbers — regardless of worker-thread count.
#[test]
fn sweep_results_are_bit_identical_at_1_2_and_8_threads() {
    let run_all = |threads: usize| -> Vec<(String, u64, String)> {
        let mut sweep = Sweep::new(format!("determinism x{threads}"), support::SEED);
        for &name in support::SCENARIOS {
            sweep.scenario(name, move |_| {
                let outcomes = support::run_scenario(name);
                (
                    support::fingerprint(&outcomes),
                    support::metrics_report(name, &outcomes),
                )
            });
        }
        sweep
            .run_with_threads(threads)
            .into_iter()
            .map(|r| (r.label, r.value.0, r.value.1))
            .collect()
    };

    let single = run_all(1);
    assert_eq!(single.len(), support::SCENARIOS.len());
    for threads in [2, 8] {
        let multi = run_all(threads);
        for (a, b) in single.iter().zip(multi.iter()) {
            assert_eq!(a.0, b.0, "scenario order changed at {threads} threads");
            assert_eq!(
                a.1, b.1,
                "per-request fingerprint of {} drifted at {threads} threads",
                a.0
            );
            assert_eq!(
                a.2, b.2,
                "aggregate metrics of {} drifted at {threads} threads",
                a.0
            );
        }
    }
}

/// The SMP scenarios, explicitly: the balance tick and migration machinery
/// run inside one machine's event loop, so worker threads must not leak
/// into balance decisions. (These are also members of `SCENARIOS` and thus
/// covered above; this test keeps the SMP gate visible on its own when the
/// scenario matrix grows.)
#[test]
fn smp_scenarios_are_thread_count_invariant() {
    let run_all = |threads: usize| -> Vec<(String, u64)> {
        let mut sweep = Sweep::new(format!("smp determinism x{threads}"), support::SEED);
        for &name in support::SMP_SCENARIOS {
            sweep.scenario(name, move |_| {
                support::fingerprint(&support::run_scenario(name))
            });
        }
        sweep
            .run_with_threads(threads)
            .into_iter()
            .map(|r| (r.label, r.value))
            .collect()
    };
    let single = run_all(1);
    assert_eq!(single.len(), support::SMP_SCENARIOS.len());
    for threads in [2, 8] {
        assert_eq!(single, run_all(threads), "threads={threads}");
    }
}

/// The fleet scenarios, explicitly — and at every *internal* thread count:
/// the front door routes and injects faults sequentially, so the unit
/// fan-out must not leak into routing, autoscaling, or fault attribution.
/// (The `SCENARIOS` members above run the fleet on one worker; this test
/// re-runs each fleet scenario with the fleet's own `--threads` at 1, 2,
/// and 8 and demands the same per-request fingerprint.)
#[test]
fn fleet_scenarios_are_thread_count_invariant() {
    let run_all = |threads: usize| -> Vec<(&str, u64)> {
        support::FLEET_SCENARIOS
            .iter()
            .map(|&name| {
                (
                    name,
                    support::fingerprint(&support::run_fleet_scenario_threads(name, threads)),
                )
            })
            .collect()
    };
    let single = run_all(1);
    assert_eq!(single.len(), support::FLEET_SCENARIOS.len());
    for threads in [2, 8] {
        assert_eq!(single, run_all(threads), "threads={threads}");
    }
}

/// The seed sequencer hands every trial the same stream no matter which
/// worker claims it (work-stealing order is timing-dependent; seeds must
/// not be).
#[test]
fn trial_seeds_do_not_depend_on_execution_order() {
    let collect = |threads: usize| {
        parallel::run_seeded(64, threads, support::SEED, |i, mut rng| {
            (i, rng.next_u64(), rng.unit().to_bits())
        })
    };
    let one = collect(1);
    for threads in [2, 8] {
        assert_eq!(collect(threads), one, "threads={threads}");
    }
}
