//! Property-style tests for the simulation primitives.
//!
//! Randomised cases are generated from the crate's own seeded [`SimRng`]
//! (no proptest dependency): each test runs a fixed number of cases from a
//! fixed seed, so failures are exactly reproducible.

use sfs_simcore::{EventQueue, Histogram, OnlineStats, Samples, SimDuration, SimRng, SimTime};

const CASES: u64 = 64;

fn case_rng(test: &str, case: u64) -> SimRng {
    SimRng::seed_from_u64(0xA11CE)
        .derive(test)
        .derive(&case.to_string())
}

/// Events pop in non-decreasing time order; equal timestamps pop FIFO.
#[test]
fn event_queue_total_order() {
    for case in 0..CASES {
        let mut rng = case_rng("event_queue_total_order", case);
        let n = rng.uniform_u64(1, 299) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.uniform_u64(0, 999)).collect();
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::ZERO + SimDuration::from_millis(t), i);
        }
        let mut prev_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = Vec::new();
        let mut last_time = None;
        while let Some((at, idx)) = q.pop() {
            assert!(at >= prev_time, "time went backwards (case {case})");
            if Some(at) == last_time {
                assert!(
                    *seen_at_time.last().unwrap() < idx,
                    "FIFO violated for simultaneous events (case {case})"
                );
            } else {
                seen_at_time.clear();
            }
            seen_at_time.push(idx);
            last_time = Some(at);
            prev_time = at;
        }
    }
}

/// Randomized push/pop interleavings against a reference model.
///
/// The model is a plain `Vec<(time, push_order, payload)>` with a stable
/// sort: the specification of "ascending time, FIFO within ties". Every
/// queue operation — `push`, `pop`, `pop_until`, the `pop_batch_until`
/// fast path, and `recycle` — must agree with it at every step, so the
/// capacity-reuse fast paths cannot drift from the reference semantics.
#[test]
fn event_queue_matches_reference_model() {
    for case in 0..CASES {
        let mut rng = case_rng("event_queue_model", case);
        let n_ops = rng.uniform_u64(1, 399);
        let mut q: EventQueue<u64> = EventQueue::new();
        // Reference: (time_ms, insertion order, payload), kept sorted
        // lazily by a stable sort before every removal.
        let mut model: Vec<(u64, u64, u64)> = Vec::new();
        let mut pushed = 0u64;
        let mut batch: Vec<(SimTime, u64)> = Vec::new();
        for op in 0..n_ops {
            // A tiny time domain forces many equal-timestamp ties.
            let t_ms = rng.uniform_u64(0, 7);
            match rng.pick_weighted(&[0.5, 0.2, 0.2, 0.08, 0.02]) {
                0 => {
                    q.push(at_ms(t_ms), pushed);
                    model.push((t_ms, pushed, pushed));
                    pushed += 1;
                }
                1 => {
                    model.sort_by_key(|&(t, ord, _)| (t, ord));
                    let expect = if model.is_empty() {
                        None
                    } else {
                        let (t, _, p) = model.remove(0);
                        Some((at_ms(t), p))
                    };
                    assert_eq!(q.pop(), expect, "pop (case {case} op {op})");
                }
                2 => {
                    model.sort_by_key(|&(t, ord, _)| (t, ord));
                    let expect = match model.first() {
                        Some(&(t, _, p)) if t <= t_ms => {
                            model.remove(0);
                            Some((at_ms(t), p))
                        }
                        _ => None,
                    };
                    assert_eq!(
                        q.pop_until(at_ms(t_ms)),
                        expect,
                        "pop_until (case {case} op {op})"
                    );
                }
                3 => {
                    model.sort_by_key(|&(t, ord, _)| (t, ord));
                    let cut = model.partition_point(|&(t, _, _)| t <= t_ms);
                    let expect: Vec<(SimTime, u64)> =
                        model.drain(..cut).map(|(t, _, p)| (at_ms(t), p)).collect();
                    batch.clear();
                    let popped = q.pop_batch_until(at_ms(t_ms), &mut batch);
                    assert_eq!(popped, expect.len(), "batch count (case {case} op {op})");
                    assert_eq!(batch, expect, "batch order (case {case} op {op})");
                }
                _ => {
                    q.recycle();
                    model.clear();
                }
            }
            assert_eq!(q.len(), model.len(), "len (case {case} op {op})");
            model.sort_by_key(|&(t, ord, _)| (t, ord));
            assert_eq!(
                q.peek_time(),
                model.first().map(|&(t, _, _)| at_ms(t)),
                "peek (case {case} op {op})"
            );
        }
    }
}

fn at_ms(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// Nearest-rank quantiles are actual samples and monotone in q.
#[test]
fn quantiles_are_samples_and_monotone() {
    for case in 0..CASES {
        let mut rng = case_rng("quantiles", case);
        let n = rng.uniform_u64(1, 399) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(-1e6, 1e6)).collect();
        let mut s = Samples::from_vec(xs.clone());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = s.quantile(q);
            assert!(
                xs.contains(&v),
                "quantile {v} is not a sample (case {case})"
            );
            assert!(v >= prev, "quantile not monotone (case {case})");
            prev = v;
        }
        assert_eq!(
            s.quantile(1.0),
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            "case {case}"
        );
    }
}

/// Welford mean matches the naive mean to floating tolerance.
#[test]
fn online_stats_match_naive() {
    for case in 0..CASES {
        let mut rng = case_rng("online_stats", case);
        let n = rng.uniform_u64(1, 499) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(-1e4, 1e4)).collect();
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        let naive = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((o.mean() - naive).abs() < 1e-6, "case {case}");
        assert_eq!(o.count(), xs.len() as u64, "case {case}");
        assert!(
            o.min() <= o.mean() + 1e-9 && o.mean() <= o.max() + 1e-9,
            "case {case}"
        );
    }
}

/// Histogram counts everything exactly once.
#[test]
fn histogram_conserves_counts() {
    for case in 0..CASES {
        let mut rng = case_rng("histogram", case);
        let n = rng.uniform_u64(1, 399) as usize;
        // Log-uniform over [1e-3, 1e9) so values land across (and beyond)
        // the bucket range.
        let xs: Vec<f64> = (0..n).map(|_| 10f64.powf(rng.uniform(-3.0, 9.0))).collect();
        let mut h = Histogram::new(1.0, 10.0, 10);
        for &x in &xs {
            h.record(x);
        }
        assert_eq!(h.total(), xs.len() as u64, "case {case}");
        let sum: u64 = h.buckets().map(|(_, c)| c).sum();
        assert_eq!(sum, xs.len() as u64, "case {case}");
        assert!(
            (h.cumulative_fraction(9) - 1.0).abs() < 1e-12,
            "case {case}"
        );
    }
}
