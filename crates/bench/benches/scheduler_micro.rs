//! Microbenchmarks for the scheduler substrate's hot paths:
//! CFS runqueue operations at various occupancies, RT queue operations,
//! time-slice adaptation, and FaaSBench sampling throughput.
//!
//! Uses the in-repo `sfs_bench::timebench` harness (std-only; see the
//! module docs) instead of criterion so the workspace stays
//! dependency-free. Run with `cargo bench --bench scheduler_micro`.

use std::hint::black_box;

use sfs_bench::timebench::Harness;
use sfs_core::{SfsConfig, SliceController};
use sfs_sched::{CfsRunqueue, Pid, RtRunqueue};
use sfs_simcore::{EventQueue, SimDuration, SimRng, SimTime};
use sfs_workload::Table1Sampler;

fn bench_cfs_runqueue(h: &mut Harness) {
    for &n in &[1_000usize, 10_000, 100_000] {
        // Pre-build a queue of n tasks; measure one pick cycle (pop the
        // leftmost, re-enqueue it at the tail) against that occupancy.
        // Pids stay dense — the runqueue's position index is keyed by
        // pid, matching how the machine allocates them.
        let mut rq = CfsRunqueue::new();
        for i in 0..n {
            rq.enqueue(Pid(i as u64), (i as u64) * 1_000, 1024);
        }
        let mut top = (n as u64) * 1_000;
        h.bench(&format!("cfs_runqueue/enqueue_pop/{n}"), || {
            let (_, pid) = rq.pop().expect("non-empty");
            top += 1_000;
            rq.enqueue(pid, top, 1024);
            black_box(rq.total_weight());
        });
    }
}

fn bench_rt_runqueue(h: &mut Harness) {
    let mut rq = RtRunqueue::new();
    for i in 0..512u64 {
        rq.push_back(Pid(i), (i % 64) as u8 + 1);
    }
    let mut i = 512u64;
    h.bench("rt_runqueue/push_pop_64prios", || {
        i += 1;
        rq.push_back(Pid(i), (i % 64) as u8 + 1);
        black_box(rq.pop());
    });
}

fn bench_event_queue(h: &mut Harness) {
    // One simulated drain step over a 4k-event backlog with ~8 events per
    // timestamp: the incremental peek+pop loop vs the batch fast path with
    // a reused buffer (the shape of the SFS controller's inner loop).
    let build = || {
        let mut q = EventQueue::with_capacity(4_096);
        for i in 0..4_096u64 {
            q.push(SimTime::ZERO + SimDuration::from_millis(i / 8), i);
        }
        q
    };
    let horizon = SimTime::ZERO + SimDuration::from_millis(4_096 / 8);
    let mut q = build();
    h.bench("event_queue/drain_incremental_pop_until", || {
        while let Some(ev) = q.pop_until(horizon) {
            black_box(ev);
        }
        q = build();
    });
    let mut q = build();
    let mut buf: Vec<(SimTime, u64)> = Vec::new();
    h.bench("event_queue/drain_batch_reused_buffer", || {
        buf.clear();
        black_box(q.pop_batch_until(horizon, &mut buf));
        q.recycle();
        for i in 0..4_096u64 {
            q.push(SimTime::ZERO + SimDuration::from_millis(i / 8), i);
        }
    });
}

fn bench_timeslice(h: &mut Harness) {
    let cfg = SfsConfig::new(16);
    let mut sc = SliceController::new(&cfg);
    let mut t = SimTime::ZERO;
    h.bench("timeslice/on_arrival", || {
        t += SimDuration::from_micros(800);
        sc.on_arrival(t);
        black_box(sc.current());
    });
}

fn bench_workload_gen(h: &mut Harness) {
    let s = Table1Sampler::new();
    let mut rng = SimRng::seed_from_u64(1);
    h.bench("faasbench/table1_sample", || {
        black_box(s.sample_ms(&mut rng));
    });
}

fn main() {
    let mut h = Harness::from_args();
    bench_cfs_runqueue(&mut h);
    bench_rt_runqueue(&mut h);
    bench_event_queue(&mut h);
    bench_timeslice(&mut h);
    bench_workload_gen(&mut h);
    h.finish();
}
