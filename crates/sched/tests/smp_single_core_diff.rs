//! Single-core bit-exactness gate for the SMP machine model.
//!
//! The SMP refactor's contract has two faces:
//!
//! 1. **Default `SmpParams` is the pre-refactor machine at any core
//!    count** — no balance events, no migration or affinity charges, so
//!    every pre-existing golden snapshot passes byte-unchanged (locked by
//!    `crates/bench/tests/golden.rs` with zero regeneration).
//! 2. **`cores = 1` is immune to the SMP knobs entirely** — with one core
//!    there is nothing to balance toward and no cross-core resume to
//!    charge, so even a fully enabled SMP configuration must replay the
//!    pre-refactor notification stream *bit-identically, step by step*.
//!
//! This suite locks face 2 differentially: randomized workloads drive two
//! machines — SMP knobs off (the pre-refactor reference) and SMP knobs
//! fully on — through identical spawn/advance/set_policy sequences and
//! assert the notification streams and externally visible state agree at
//! every step, not merely at the end.

use sfs_sched::{
    KernelPolicyKind, Machine, MachineParams, Notification, Phase, Policy, SmpParams, TaskSpec,
};
use sfs_simcore::{SimDuration, SimRng, SimTime};

fn us(v: u64) -> SimDuration {
    SimDuration::from_micros(v)
}

fn case_rng(test: &str, case: usize) -> SimRng {
    SimRng::seed_from_u64(0x51A6_C0DE)
        .derive(test)
        .derive(&case.to_string())
}

/// A randomized spec: CPU burst, optionally sandwiched by I/O phases, under
/// a random policy (mostly CFS at varied nice, some RT).
fn random_spec(rng: &mut SimRng, label: u64) -> TaskSpec {
    let mut phases = Vec::new();
    if rng.chance(0.3) {
        phases.push(Phase::Io(us(rng.uniform_u64(50, 4_000))));
    }
    phases.push(Phase::Cpu(us(rng.uniform_u64(200, 20_000))));
    if rng.chance(0.25) {
        phases.push(Phase::Io(us(rng.uniform_u64(100, 2_000))));
        phases.push(Phase::Cpu(us(rng.uniform_u64(100, 5_000))));
    }
    let policy = if rng.chance(0.15) {
        Policy::Fifo {
            prio: rng.uniform_u64(1, 99) as u8,
        }
    } else {
        Policy::Normal {
            nice: rng.uniform_u64(0, 10) as i8 - 5,
        }
    };
    TaskSpec {
        phases,
        policy,
        label,
    }
}

/// Drive `off` and `on` through one identical randomized step and compare
/// the produced notification batches verbatim.
fn lockstep_case(mut rng: SimRng, steps: usize) {
    let base = MachineParams {
        cores: 1,
        kpolicy: KernelPolicyKind::Cfs,
        ..Default::default()
    };
    // Every SMP mechanism enabled, aggressively: a 200µs balance tick and
    // non-zero migration/affinity charges. On one core all of it must be
    // inert.
    let smp_on = SmpParams::balanced(us(200), us(500), us(250));
    let mut off = Machine::new(base);
    let mut on = Machine::new(base.with_smp(smp_on));

    let mut now = SimTime::ZERO;
    let mut spawned: Vec<sfs_sched::Pid> = Vec::new();
    let mut notes_off: Vec<Notification> = Vec::new();
    let mut notes_on: Vec<Notification> = Vec::new();

    for step in 0..steps {
        // Randomly: spawn, policy-switch a live task, or just advance.
        if rng.chance(0.5) || spawned.is_empty() {
            let spec = random_spec(&mut rng, step as u64);
            let p_off = off.spawn(spec.clone());
            let p_on = on.spawn(spec);
            assert_eq!(p_off, p_on, "pid allocation must agree");
            spawned.push(p_off);
        } else if rng.chance(0.2) {
            let pid = spawned[rng.uniform_u64(0, spawned.len() as u64 - 1) as usize];
            let pol = if rng.chance(0.5) {
                Policy::Fifo { prio: 40 }
            } else {
                Policy::NORMAL
            };
            off.set_policy(pid, pol);
            on.set_policy(pid, pol);
        }
        now += us(rng.uniform_u64(50, 3_000));
        notes_off.clear();
        notes_on.clear();
        off.advance_into(now, &mut notes_off);
        on.advance_into(now, &mut notes_on);
        assert_eq!(
            format!("{notes_off:?}"),
            format!("{notes_on:?}"),
            "step {step}: notification streams diverged at {now}"
        );
        assert_eq!(off.now(), on.now());
        assert_eq!(off.live_tasks(), on.live_tasks());
        assert_eq!(off.total_ctx_switches(), on.total_ctx_switches());
        for &pid in &spawned {
            assert_eq!(off.proc_state(pid), on.proc_state(pid), "state of {pid}");
            assert_eq!(off.cpu_time(pid), on.cpu_time(pid), "utime of {pid}");
        }
        on.assert_conservation();
    }

    // Drain both and compare the completion records bit-for-bit.
    let fin_off = off.run_until_quiescent();
    let fin_on = on.run_until_quiescent();
    assert_eq!(format!("{fin_off:?}"), format!("{fin_on:?}"));
    assert_eq!(
        format!("{:?}", off.finished()),
        format!("{:?}", on.finished())
    );
    assert_eq!(on.balance_migrations(), 0, "one core: nothing to balance");
}

#[test]
fn single_core_smp_machine_is_bit_identical_stepwise() {
    for case in 0..12 {
        lockstep_case(case_rng("single_core_lockstep", case), 60);
    }
}

#[test]
fn single_core_smp_machine_agrees_on_heavy_overload() {
    // Fewer, longer cases at heavy oversubscription (the regime where the
    // balancer would be busiest if it had a second core).
    for case in 0..3 {
        lockstep_case(case_rng("single_core_overload", case), 250);
    }
}
