//! `perf_suite` — the machine-readable performance trajectory.
//!
//! Runs the fixed perf scenario matrix (`sfs_bench::perf::suite`): the
//! end-to-end simulations (SFS / CFS / 4-host cluster / azure replay /
//! SFS on the SMP-enabled machine) at a pinned seed and request count,
//! plus the hot-loop microbenchmarks (CFS pick, SFS dispatch, SMP balance
//! tick). Prints a human table and writes the schema-versioned
//! `BENCH_sim.json`.
//!
//! ```text
//! perf_suite [--out PATH] [--check BASELINE.json] [--tolerance RATIO]
//!            [--filter SUBSTR]
//! ```
//!
//! * `--out` — where to write the JSON report (default `BENCH_sim.json`).
//! * `--check` — additionally diff this run against a baseline report and
//!   exit non-zero if any scenario's median regressed past the band.
//! * `--tolerance` — the band for `--check` as a ratio (default 2.0; CI
//!   uses the default wide band, the strict local workflow uses ~1.15).
//! * `--filter` — run only scenarios whose name contains the substring
//!   (a filtered run still writes JSON, so it can seed focused diffs).
//!
//! Scale: `SFS_PERF_REQUESTS` (default 2000) sizes the `sim/` scenarios;
//! `SFS_BENCH_SEED` pins the workloads. Microbenchmarks are fixed-size so
//! their numbers are comparable across scales.

use std::process::ExitCode;

use sfs_bench::perf::{self, BenchReport};
use sfs_bench::timebench::fmt_ns;

fn perf_requests() -> usize {
    let v = std::env::var("SFS_PERF_REQUESTS").ok();
    sfs_bench::parse_env_override("SFS_PERF_REQUESTS", v.as_deref(), 2_000)
}

struct Args {
    out: String,
    check: Option<String>,
    tolerance: f64,
    filter: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: "BENCH_sim.json".to_string(),
        check: None,
        tolerance: 2.0,
        filter: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = value("--out")?,
            "--check" => args.check = Some(value("--check")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
                if args.tolerance < 1.0 {
                    return Err("--tolerance is a ratio >= 1.0".into());
                }
            }
            "--filter" => args.filter = Some(value("--filter")?),
            other => return Err(format!("unknown argument {other:?} (see --help in docs)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perf_suite: {e}");
            return ExitCode::FAILURE;
        }
    };
    let n = perf_requests();
    let seed = sfs_bench::seed();
    println!("== perf_suite: simulator performance matrix");
    println!("   requests={n} seed={seed:#x} (SFS_PERF_REQUESTS / SFS_BENCH_SEED to override)");
    println!(
        "   large-run scale={} (SFS_PERF_LARGE_REQUESTS to override)",
        perf::large_requests()
    );
    println!();
    println!(
        "{:<24} {:>12} {:>12} {:>12} {:>16}",
        "scenario", "median/item", "p10", "p90", "throughput"
    );

    let mut scenarios = perf::suite(n, seed);
    if let Some(ref pat) = args.filter {
        scenarios.retain(|s| s.name.contains(pat.as_str()));
        if scenarios.is_empty() {
            eprintln!("perf_suite: no scenario matches filter {pat:?}");
            return ExitCode::FAILURE;
        }
    }
    let report = perf::run_suite(scenarios, n, seed, |name, rec| {
        println!(
            "{:<24} {:>12} {:>12} {:>12} {:>13.0}/s",
            name,
            fmt_ns(rec.median_ns_per_req),
            fmt_ns(rec.p10_ns_per_req),
            fmt_ns(rec.p90_ns_per_req),
            rec.throughput_rps,
        );
    });

    if let Some(bytes) = sfs_bench::peak_rss_bytes() {
        // Peak-memory note: the whole matrix, the streaming large-run
        // scenario included, inside one process high-water mark.
        println!(
            "\npeak RSS {:.1} MiB (VmHWM, whole suite incl. sim/sfs_azure_10m)",
            bytes as f64 / (1024.0 * 1024.0)
        );
    }

    match std::fs::write(&args.out, report.to_json()) {
        Ok(()) => println!("\n[saved {}]", args.out),
        Err(e) => {
            eprintln!("perf_suite: cannot write {}: {e}", args.out);
            return ExitCode::FAILURE;
        }
    }

    if let Some(ref baseline_path) = args.check {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("perf_suite: cannot read baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match BenchReport::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("perf_suite: bad baseline {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if baseline.requests != report.requests {
            println!(
                "[note] baseline ran at requests={}, this run at {} — \
                 sim/ scenarios are compared across scales",
                baseline.requests, report.requests
            );
        }
        if baseline.seed != report.seed {
            println!(
                "[note] baseline ran at seed={}, this run at {} — \
                 sim/ scenarios are compared across different workloads",
                baseline.seed, report.seed
            );
        }
        println!(
            "\n-- check vs {baseline_path} (band {:.2}x) --",
            args.tolerance
        );
        let cmp = perf::compare(&report, &baseline, args.tolerance);
        for line in &cmp.lines {
            println!("{line}");
        }
        if !cmp.regressions.is_empty() {
            eprintln!("\nperf regressions past the {:.2}x band:", args.tolerance);
            for r in &cmp.regressions {
                eprintln!("  {r}");
            }
            return ExitCode::FAILURE;
        }
        println!("\nno regression past the {:.2}x band", args.tolerance);
    }
    ExitCode::SUCCESS
}
