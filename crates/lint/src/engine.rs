//! The rule engine: runs the [ruleset](crate::rules::RULESET) over one
//! lexed source file, applies suppressions, and reports findings.
//!
//! Test code (files under a `tests/` or `benches/` directory, plus
//! `#[cfg(test)]` / `#[test]` item regions in any file) is exempt from
//! rules with `skip_test_code` — a test may legitimately build a
//! `HashSet` to check seed uniqueness, but the simulation core may not.
//!
//! Suppressions are themselves checked: a directive with no reason, an
//! unknown rule id, or one that suppresses nothing is a finding. Allows
//! must not rot.

use crate::lexer::{lex, Directive, DirectiveScope, Token, TokenKind};
use crate::rules::{rule_by_id, Matcher, Rule};

/// One lint finding, pointing at a workspace-relative path and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D1`, …) or a meta id (`allow-syntax`, `unused-allow`).
    pub rule: String,
    /// Workspace-relative, `/`-separated path.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Human message.
    pub message: String,
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Findings that must be fixed or suppressed-with-reason.
    pub findings: Vec<Finding>,
    /// Findings silenced by a well-formed reasoned allow (kept for
    /// `--verbose` reporting: suppressions stay visible, not buried).
    pub suppressed: Vec<Finding>,
}

/// Scan one file's source text. `rel_path` must be workspace-relative with
/// `/` separators — it drives per-rule allowed paths and test-tree checks.
pub fn scan_source(rel_path: &str, source: &str, ruleset: &[Rule]) -> FileScan {
    let lexed = lex(source);
    let test_file = is_test_path(rel_path);
    let test_lines = if test_file {
        TestRegions::all()
    } else {
        TestRegions::from_tokens(&lexed.tokens)
    };

    let mut scan = FileScan::default();
    let mut used_directive = vec![false; lexed.directives.len()];

    for rule in ruleset {
        if rule.allowed_paths.iter().any(|p| path_allows(rel_path, p)) {
            continue;
        }
        for (line, detail) in match_rule(rule, &lexed.tokens) {
            if rule.skip_test_code && test_lines.contains(line) {
                continue;
            }
            let finding = Finding {
                rule: rule.id.to_string(),
                path: rel_path.to_string(),
                line,
                message: format!("{} — {}", rule.summary, detail),
            };
            match find_suppression(&lexed.directives, rule.id, line) {
                Some(di) => {
                    used_directive[di] = true;
                    scan.suppressed.push(finding);
                }
                None => scan.findings.push(finding),
            }
        }
    }

    // Directive hygiene: malformed, unknown-rule, and unused allows are
    // findings in their own right (and cannot themselves be suppressed).
    for (i, d) in lexed.directives.iter().enumerate() {
        if let Some(msg) = &d.malformed {
            scan.findings.push(Finding {
                rule: "allow-syntax".to_string(),
                path: rel_path.to_string(),
                line: d.line,
                message: msg.clone(),
            });
            continue;
        }
        if rule_by_id(&d.rule).is_none() {
            scan.findings.push(Finding {
                rule: "allow-syntax".to_string(),
                path: rel_path.to_string(),
                line: d.line,
                message: format!("lint allow names unknown rule `{}`", d.rule),
            });
            continue;
        }
        if !used_directive[i] {
            scan.findings.push(Finding {
                rule: "unused-allow".to_string(),
                path: rel_path.to_string(),
                line: d.line,
                message: format!(
                    "allow({}) suppresses nothing — remove it (stale allows hide future findings)",
                    d.rule
                ),
            });
        }
    }

    scan
}

/// One `allowed_paths` entry against a workspace-relative path. A plain
/// entry is a file suffix match; an entry ending in `/` is a directory
/// prefix match covering every file beneath it (how K1 whitelists the
/// whole `crates/sched/src/policy/` tree).
fn path_allows(rel_path: &str, pattern: &str) -> bool {
    if pattern.ends_with('/') {
        rel_path.starts_with(pattern) || rel_path.contains(&format!("/{pattern}"))
    } else {
        rel_path == pattern || rel_path.ends_with(&format!("/{pattern}"))
    }
}

/// Whole-path test check: anything under a `tests/` or `benches/` dir.
fn is_test_path(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| seg == "tests" || seg == "benches")
}

/// Lines covered by `#[cfg(test)]` / `#[test]` items, as inclusive spans.
struct TestRegions {
    spans: Vec<(u32, u32)>,
    all: bool,
}

impl TestRegions {
    fn all() -> Self {
        TestRegions {
            spans: Vec::new(),
            all: true,
        }
    }

    fn contains(&self, line: u32) -> bool {
        self.all || self.spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Find `#[cfg(test)] <item>` / `#[test] fn …` spans by scanning for
    /// the attribute, then taking the following item's extent: up to a
    /// top-level `;`, or the matching `}` of its first `{`.
    fn from_tokens(tokens: &[Token]) -> Self {
        let mut spans = Vec::new();
        let mut i = 0usize;
        while i < tokens.len() {
            if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                let start_line = tokens[i].line;
                let (attr_end, is_test_attr) = read_attribute(tokens, i + 1);
                if is_test_attr {
                    if let Some(end_line) = item_end_line(tokens, attr_end) {
                        spans.push((start_line, end_line));
                    }
                }
                i = attr_end;
            } else {
                i += 1;
            }
        }
        TestRegions { spans, all: false }
    }
}

/// Read the attribute starting at the `[` index; returns (index past `]`,
/// whether it is `#[test]`-like or `#[cfg(… test …)]`).
fn read_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut idents: Vec<&str> = Vec::new();
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            TokenKind::Ident(s) => idents.push(s.as_str()),
            TokenKind::Punct(_) => {}
        }
        i += 1;
    }
    // `#[test]` exactly, or `#[cfg(…)]` mentioning `test` not negated by
    // an immediately preceding `not` (`#[cfg(not(test))]` is live code).
    let is_test = match idents.split_first() {
        Some((&"test", rest)) => rest.is_empty(),
        Some((&"cfg", rest)) => rest
            .iter()
            .enumerate()
            .any(|(k, s)| *s == "test" && (k == 0 || rest[k - 1] != "not")),
        _ => false,
    };
    (i, is_test)
}

/// The last line of the item starting at token index `i` (skipping any
/// further attributes): the line of a top-level `;`, or of the `}`
/// matching the item's first `{`.
fn item_end_line(tokens: &[Token], mut i: usize) -> Option<u32> {
    // Skip stacked attributes between #[cfg(test)] and the item.
    while i < tokens.len()
        && tokens[i].is_punct('#')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        let (next, _) = read_attribute(tokens, i + 1);
        i = next;
    }
    let mut brace_depth = 0i32;
    let mut entered = false;
    while i < tokens.len() {
        match tokens[i].kind {
            TokenKind::Punct(';') if !entered => return Some(tokens[i].line),
            TokenKind::Punct('{') => {
                entered = true;
                brace_depth += 1;
            }
            TokenKind::Punct('}') => {
                brace_depth -= 1;
                if entered && brace_depth == 0 {
                    return Some(tokens[i].line);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Run one rule's matcher over the token stream, yielding (line, detail),
/// at most one hit per (line, detail) pair — `HashMap<K, V> = HashMap::new()`
/// is one finding, not two.
fn match_rule(rule: &Rule, tokens: &[Token]) -> Vec<(u32, String)> {
    let mut hits = match_rule_raw(rule, tokens);
    hits.dedup();
    hits
}

fn match_rule_raw(rule: &Rule, tokens: &[Token]) -> Vec<(u32, String)> {
    let mut hits = Vec::new();
    match rule.matcher {
        Matcher::IdentAny(names) => {
            for t in tokens {
                if let Some(id) = t.ident() {
                    if names.contains(&id) {
                        hits.push((t.line, format!("`{id}`")));
                    }
                }
            }
        }
        Matcher::PathSeq(paths) => {
            for path in paths {
                for i in 0..tokens.len() {
                    if matches_path(tokens, i, path) {
                        hits.push((tokens[i].line, format!("`{}`", path.join("::"))));
                    }
                }
            }
            hits.sort();
        }
        Matcher::CallThen { head, tails } => {
            for i in 0..tokens.len() {
                if tokens[i].ident() != Some(head) {
                    continue;
                }
                if !tokens.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                    continue;
                }
                let Some(close) = matching_paren(tokens, i + 1) else {
                    continue;
                };
                if !tokens.get(close + 1).is_some_and(|t| t.is_punct('.')) {
                    continue;
                }
                if let Some(tail) = tokens.get(close + 2).and_then(|t| t.ident()) {
                    if tails.contains(&tail) {
                        hits.push((tokens[i].line, format!("`{head}(..).{tail}()`")));
                    }
                }
            }
        }
    }
    hits
}

/// `tokens[i..]` starts the ident path `segs[0]::segs[1]::…`?
fn matches_path(tokens: &[Token], i: usize, segs: &[&str]) -> bool {
    let mut idx = i;
    for (k, seg) in segs.iter().enumerate() {
        if tokens.get(idx).and_then(|t| t.ident()) != Some(seg) {
            return false;
        }
        idx += 1;
        if k + 1 < segs.len() {
            if !(tokens.get(idx).is_some_and(|t| t.is_punct(':'))
                && tokens.get(idx + 1).is_some_and(|t| t.is_punct(':')))
            {
                return false;
            }
            idx += 2;
        }
    }
    true
}

/// Index of the `)` matching the `(` at `open`.
fn matching_paren(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match t.kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// A well-formed directive that suppresses `rule` at `line`: same line or
/// the line above (line scope), or anywhere in the file (file scope).
fn find_suppression(directives: &[Directive], rule: &str, line: u32) -> Option<usize> {
    directives.iter().position(|d| {
        d.malformed.is_none()
            && d.rule == rule
            && match d.scope {
                DirectiveScope::Line => d.line == line || d.line + 1 == line,
                DirectiveScope::File => true,
            }
    })
}
