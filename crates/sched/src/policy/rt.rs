//! Real-time (SCHED_FIFO / SCHED_RR) runqueue model.
//!
//! A single machine-global priority queue: Linux keeps per-core RT runqueues
//! but aggressively push/pull-migrates RT tasks so that the `n` cores always
//! run the `n` highest-priority runnable RT tasks. A global queue reproduces
//! exactly that steady-state behaviour with far less machinery, which is the
//! relevant property for SFS: its ≤ `c` FILTER functions at equal priority
//! always occupy cores immediately, preempting CFS (§V-B step 2).

use std::collections::{BTreeMap, VecDeque};

use sfs_simcore::SimDuration;

use crate::task::Pid;

/// `RR_TIMESLICE`: mainline's round-robin quantum (100 ms).
pub const RR_TIMESLICE: SimDuration = SimDuration::from_millis(100);

/// Machine-global real-time runqueue: FIFO queues per static priority,
/// highest priority served first; within a priority, FIFO order.
#[derive(Debug, Clone, Default)]
pub struct RtRunqueue {
    /// prio → waiting tasks (FIFO within the priority level).
    queues: BTreeMap<u8, VecDeque<Pid>>,
    len: usize,
}

impl RtRunqueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued RT tasks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no RT task is waiting.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True iff `pid` waits at any priority level (O(n) scan; used by
    /// conservation audits, not the hot path).
    pub fn contains(&self, pid: Pid) -> bool {
        self.queues.values().any(|q| q.contains(&pid))
    }

    /// Enqueue at the tail of its priority level (new arrivals, wakeups).
    pub fn push_back(&mut self, pid: Pid, prio: u8) {
        self.queues.entry(prio).or_default().push_back(pid);
        self.len += 1;
    }

    /// Enqueue at the head of its priority level (a preempted FIFO task
    /// resumes before its peers, per `sched(7)`).
    pub fn push_front(&mut self, pid: Pid, prio: u8) {
        self.queues.entry(prio).or_default().push_front(pid);
        self.len += 1;
    }

    /// Highest priority with a waiting task.
    pub fn top_prio(&self) -> Option<u8> {
        self.queues
            .iter()
            .rev()
            .find(|(_, q)| !q.is_empty())
            .map(|(&p, _)| p)
    }

    /// Pop the head of the highest non-empty priority level.
    pub fn pop(&mut self) -> Option<(Pid, u8)> {
        let prio = self.top_prio()?;
        let q = self.queues.get_mut(&prio).expect("non-empty level");
        let pid = q.pop_front().expect("non-empty level");
        if q.is_empty() {
            self.queues.remove(&prio);
        }
        self.len -= 1;
        Some((pid, prio))
    }

    /// Remove a specific task (policy change while queued). Returns whether
    /// it was present.
    pub fn remove(&mut self, pid: Pid) -> bool {
        let mut found_at: Option<u8> = None;
        for (&prio, q) in self.queues.iter_mut() {
            if let Some(idx) = q.iter().position(|&p| p == pid) {
                q.remove(idx);
                found_at = Some(prio);
                break;
            }
        }
        if let Some(prio) = found_at {
            if self.queues.get(&prio).is_some_and(|q| q.is_empty()) {
                self.queues.remove(&prio);
            }
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// True iff a queued task would preempt a running task of `running_prio`
    /// (strictly higher static priority wins; equal priority does not
    /// preempt a running FIFO task).
    pub fn would_preempt(&self, running_prio: u8) -> bool {
        self.top_prio().is_some_and(|p| p > running_prio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_within_priority() {
        let mut rq = RtRunqueue::new();
        rq.push_back(Pid(1), 50);
        rq.push_back(Pid(2), 50);
        rq.push_back(Pid(3), 50);
        assert_eq!(rq.pop(), Some((Pid(1), 50)));
        assert_eq!(rq.pop(), Some((Pid(2), 50)));
        assert_eq!(rq.pop(), Some((Pid(3), 50)));
        assert_eq!(rq.pop(), None);
    }

    #[test]
    fn higher_priority_served_first() {
        let mut rq = RtRunqueue::new();
        rq.push_back(Pid(1), 10);
        rq.push_back(Pid(2), 90);
        rq.push_back(Pid(3), 50);
        assert_eq!(rq.top_prio(), Some(90));
        assert_eq!(rq.pop(), Some((Pid(2), 90)));
        assert_eq!(rq.pop(), Some((Pid(3), 50)));
        assert_eq!(rq.pop(), Some((Pid(1), 10)));
    }

    #[test]
    fn push_front_resumes_before_peers() {
        let mut rq = RtRunqueue::new();
        rq.push_back(Pid(1), 50);
        rq.push_front(Pid(2), 50);
        assert_eq!(rq.pop(), Some((Pid(2), 50)));
        assert_eq!(rq.pop(), Some((Pid(1), 50)));
    }

    #[test]
    fn remove_mid_queue() {
        let mut rq = RtRunqueue::new();
        rq.push_back(Pid(1), 50);
        rq.push_back(Pid(2), 50);
        rq.push_back(Pid(3), 50);
        assert!(rq.remove(Pid(2)));
        assert!(!rq.remove(Pid(2)));
        assert_eq!(rq.len(), 2);
        assert_eq!(rq.pop(), Some((Pid(1), 50)));
        assert_eq!(rq.pop(), Some((Pid(3), 50)));
    }

    #[test]
    fn preemption_requires_strictly_higher_prio() {
        let mut rq = RtRunqueue::new();
        rq.push_back(Pid(1), 50);
        assert!(!rq.would_preempt(50), "equal prio must not preempt");
        assert!(rq.would_preempt(49));
        assert!(!rq.would_preempt(51));
        rq.pop();
        assert!(!rq.would_preempt(0));
    }

    #[test]
    fn empty_queue_operations_are_all_safe_noops() {
        // Every read/remove on an empty queue must degrade gracefully —
        // the scheduler polls the RT queue unconditionally on each
        // scheduling decision, including when no FILTER task exists.
        let mut rq = RtRunqueue::new();
        assert_eq!(rq.pop(), None);
        assert_eq!(rq.top_prio(), None);
        assert!(!rq.remove(Pid(9)));
        assert!(!rq.would_preempt(0));
        assert_eq!(rq.len(), 0);
        // Drained-back-to-empty must behave identically to never-used:
        // popping the last task erases its priority level, leaving no
        // ghost entry behind.
        rq.push_back(Pid(1), 50);
        assert_eq!(rq.pop(), Some((Pid(1), 50)));
        assert_eq!(rq.pop(), None);
        assert_eq!(rq.top_prio(), None);
        assert!(!rq.would_preempt(0));
        assert!(rq.is_empty());
    }

    #[test]
    fn removing_last_task_of_a_level_clears_the_level() {
        let mut rq = RtRunqueue::new();
        rq.push_back(Pid(1), 50);
        rq.push_back(Pid(2), 10);
        assert!(rq.remove(Pid(1)));
        // Level 50 is gone: top_prio must fall through to 10, and an
        // equal-priority arrival at 50 must start a fresh FIFO.
        assert_eq!(rq.top_prio(), Some(10));
        rq.push_back(Pid(3), 50);
        assert_eq!(rq.pop(), Some((Pid(3), 50)));
        assert_eq!(rq.pop(), Some((Pid(2), 10)));
        assert!(rq.is_empty());
    }

    #[test]
    fn len_tracks_mixed_operations() {
        let mut rq = RtRunqueue::new();
        assert!(rq.is_empty());
        rq.push_back(Pid(1), 10);
        rq.push_back(Pid(2), 20);
        rq.push_front(Pid(3), 10);
        assert_eq!(rq.len(), 3);
        rq.pop();
        rq.remove(Pid(3));
        assert_eq!(rq.len(), 1);
    }
}
