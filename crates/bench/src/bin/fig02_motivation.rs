//! Fig. 2: performance and RTE of an Azure-sampled workload under Linux's
//! schedulers (FIFO / RR / CFS), the SRTF oracle, and IDEAL, at 80% and
//! 100% load on a 12-core OpenLambda host (§IV-B).
//!
//! Expected shape (paper observations 1–4): SRTF ≈ IDEAL; CFS best among
//! Linux policies but with a large RTE < 0.2 mass at 100%; FIFO worst
//! (convoy effect).

use sfs_bench::{banner, rtes, run_factory, save, section, turnarounds_ms, Sweep};
use sfs_core::{Baseline, Ideal, RequestOutcome, Sim};
use sfs_metrics::{cdf_chart, CdfReport, MarkdownTable};
use sfs_sched::MachineParams;
use sfs_workload::WorkloadSpec;

const CORES: usize = 12;
const BASELINES: [Baseline; 4] = [Baseline::Srtf, Baseline::Cfs, Baseline::Fifo, Baseline::Rr];

fn main() {
    let n = sfs_bench::n_requests(49_712);
    let seed = sfs_bench::seed();
    banner(
        "Fig. 2",
        "Linux schedulers vs SRTF vs IDEAL on 12 cores",
        n,
        seed,
    );

    // One trial per (load, scheduler); all trials at a load share the
    // replayed workload by regenerating it from the master seed.
    let gen = move |load: f64| {
        WorkloadSpec::azure_replay(n, seed)
            .with_load(CORES, load)
            .generate()
    };
    let mut sweep: Sweep<'_, (f64, Vec<RequestOutcome>)> = Sweep::new("fig02", seed);
    for &load in &[0.8, 1.0] {
        for b in BASELINES {
            sweep.scenario(format!("{} {:.0}%", b.name(), load * 100.0), move |_| {
                (load, run_factory(&b, CORES, &gen(load)).outcomes)
            });
        }
    }
    // IDEAL is load-independent.
    sweep.scenario("IDEAL", move |_| {
        let w = gen(1.0);
        let run = Sim::on(MachineParams::linux(CORES))
            .workload(&w)
            .controller(Ideal)
            .run();
        (1.0, run.outcomes)
    });
    let results = sweep.run();

    let mut duration_report = CdfReport::new("duration_ms");
    let mut rte_report = CdfReport::new("rte");
    let mut rte_twenty = MarkdownTable::new(&["series", "fraction RTE < 0.2"]);
    let mut chart_series: Vec<(String, Vec<f64>)> = Vec::new();

    for r in &results {
        let (load, outs) = &r.value;
        let at_full_load = (load - 1.0).abs() < 1e-9;
        let is_ideal = r.label == "IDEAL";
        let durs = turnarounds_ms(outs);
        let rt = rtes(outs);
        if !is_ideal {
            let below = rt.iter().filter(|&&x| x < 0.2).count() as f64 / rt.len() as f64;
            rte_twenty.row(&[r.label.clone(), format!("{below:.3}")]);
        }
        duration_report.push(r.label.clone(), durs.clone());
        rte_report.push(r.label.clone(), rt);
        if at_full_load && !is_ideal {
            chart_series.push((r.label.clone(), durs));
        }
    }

    section("Fig. 2(a) duration CDF quantiles (ms)");
    println!("{}", duration_report.to_markdown());
    save("fig02a_duration_cdf.csv", &duration_report.to_csv());

    section("Fig. 2(b) RTE CDF quantiles");
    println!("{}", rte_report.to_markdown());
    save("fig02b_rte_cdf.csv", &rte_report.to_csv());

    section("fraction of requests with RTE < 0.2 (paper: CFS 11.4% @80%, 89.9% @100%)");
    println!("{}", rte_twenty.to_markdown());

    section("duration CDF at 100% load (log-x)");
    let refs: Vec<(&str, &[f64])> = chart_series
        .iter()
        .map(|(l, v)| (l.as_str(), v.as_slice()))
        .collect();
    println!("{}", cdf_chart(&refs, 64, 16));
}
