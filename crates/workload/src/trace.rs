//! Workload trace import/export.
//!
//! FaaSBench workloads can be serialised to a simple CSV trace format and
//! replayed later, so an experiment can be pinned to an exact invocation
//! sequence (as the paper pins its evaluation to a replayed Azure sample)
//! or exchanged with other tools.
//!
//! Format (header required):
//! ```text
//! id,arrival_ms,app,duration_ms,injected_io_ms
//! 0,12.5,fib,34.2,
//! 1,14.1,md,120.0,55.5
//! ```

use std::fmt::Write as _;

use sfs_simcore::{SimDuration, SimTime};

use crate::apps::{build_task, AppKind};
use crate::{Request, Workload};

/// Serialise a workload to the CSV trace format.
pub fn to_csv(workload: &Workload) -> String {
    let mut out = String::from("id,arrival_ms,app,duration_ms,injected_io_ms\n");
    for r in &workload.requests {
        let io = r.injected_io_ms.map(|x| format!("{x}")).unwrap_or_default();
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            r.id,
            r.arrival.as_millis_f64(),
            r.app.name(),
            r.duration_ms,
            io
        );
    }
    out
}

/// Errors from trace parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// Missing or wrong header line.
    BadHeader,
    /// A data row failed to parse; payload is (line number, reason).
    BadRow(usize, String),
    /// Arrivals must be non-decreasing.
    UnsortedArrivals(usize),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadHeader => write!(f, "bad or missing trace header"),
            TraceError::BadRow(n, why) => write!(f, "bad row at line {n}: {why}"),
            TraceError::UnsortedArrivals(n) => {
                write!(f, "arrivals not sorted at line {n}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Parse a CSV trace back into a workload.
pub fn from_csv(text: &str) -> Result<Workload, TraceError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == "id,arrival_ms,app,duration_ms,injected_io_ms" => {}
        _ => return Err(TraceError::BadHeader),
    }
    let mut requests = Vec::new();
    let mut prev_arrival = 0.0f64;
    for (lineno, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 5 {
            return Err(TraceError::BadRow(
                lineno + 1,
                format!("expected 5 columns, got {}", cols.len()),
            ));
        }
        let parse_f = |s: &str, what: &str| -> Result<f64, TraceError> {
            s.parse::<f64>()
                .map_err(|_| TraceError::BadRow(lineno + 1, format!("bad {what}: {s:?}")))
        };
        let id: u64 = cols[0]
            .parse()
            .map_err(|_| TraceError::BadRow(lineno + 1, format!("bad id: {:?}", cols[0])))?;
        let arrival_ms = parse_f(cols[1], "arrival")?;
        if arrival_ms < prev_arrival {
            return Err(TraceError::UnsortedArrivals(lineno + 1));
        }
        prev_arrival = arrival_ms;
        let app = match cols[2] {
            "fib" => AppKind::Fib,
            "md" => AppKind::Md,
            "sa" => AppKind::Sa,
            other => {
                return Err(TraceError::BadRow(
                    lineno + 1,
                    format!("unknown app: {other:?}"),
                ))
            }
        };
        let duration_ms = parse_f(cols[3], "duration")?;
        if duration_ms <= 0.0 {
            return Err(TraceError::BadRow(
                lineno + 1,
                "duration must be positive".into(),
            ));
        }
        let injected = if cols[4].is_empty() {
            None
        } else {
            Some(parse_f(cols[4], "injected io")?)
        };
        let spec = build_task(id, app, duration_ms, injected);
        requests.push(Request {
            id,
            arrival: SimTime::ZERO + SimDuration::from_millis_f64(arrival_ms),
            app,
            duration_ms,
            injected_io_ms: injected,
            // The CSV schema predates cold starts; replayed traces are
            // always warm (matching the paper's pre-warmed setup).
            cold_start_ms: None,
            spec,
        });
    }
    Ok(Workload { requests })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;

    #[test]
    fn roundtrip_preserves_workload() {
        let mut spec = WorkloadSpec::openlambda(200, 9);
        spec.io_fraction = 0.3;
        let w = spec.with_load(4, 0.8).generate();
        let csv = to_csv(&w);
        let back = from_csv(&csv).expect("roundtrip parse");
        assert_eq!(back.len(), w.len());
        for (a, b) in w.requests.iter().zip(back.requests.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.app, b.app);
            assert!((a.arrival.as_millis_f64() - b.arrival.as_millis_f64()).abs() < 1e-6);
            assert!((a.duration_ms - b.duration_ms).abs() < 1e-9);
            assert_eq!(a.injected_io_ms.is_some(), b.injected_io_ms.is_some());
            assert_eq!(a.spec.phases.len(), b.spec.phases.len());
        }
    }

    #[test]
    fn rejects_bad_header() {
        assert_eq!(
            from_csv("nope\n1,2,fib,3,").unwrap_err(),
            TraceError::BadHeader
        );
        assert_eq!(from_csv("").unwrap_err(), TraceError::BadHeader);
    }

    #[test]
    fn rejects_malformed_rows() {
        let head = "id,arrival_ms,app,duration_ms,injected_io_ms\n";
        assert!(matches!(
            from_csv(&format!("{head}1,2,fib\n")),
            Err(TraceError::BadRow(2, _))
        ));
        assert!(matches!(
            from_csv(&format!("{head}x,2,fib,3,\n")),
            Err(TraceError::BadRow(2, _))
        ));
        assert!(matches!(
            from_csv(&format!("{head}1,2,python,3,\n")),
            Err(TraceError::BadRow(2, _))
        ));
        assert!(matches!(
            from_csv(&format!("{head}1,2,fib,-3,\n")),
            Err(TraceError::BadRow(2, _))
        ));
    }

    #[test]
    fn rejects_unsorted_arrivals() {
        let csv = "id,arrival_ms,app,duration_ms,injected_io_ms\n0,10,fib,5,\n1,9,fib,5,\n";
        assert_eq!(from_csv(csv).unwrap_err(), TraceError::UnsortedArrivals(3));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "id,arrival_ms,app,duration_ms,injected_io_ms\n0,1,fib,5,\n\n1,2,md,8,4.5\n";
        let w = from_csv(csv).unwrap();
        assert_eq!(w.len(), 2);
        assert_eq!(w.requests[1].injected_io_ms, Some(4.5));
        // md keeps its segmented phase structure through the trace format.
        assert!(w.requests[1].spec.phases.len() > 2);
    }
}
