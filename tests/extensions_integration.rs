//! Cross-crate integration for the extension features: trace round-trips
//! drive identical schedules, the SLO rule discriminates schedulers, and
//! the cluster dispatcher composes with the SFS simulator.

use sfs_repro::faas::{Cluster, Placement};
use sfs_repro::metrics::{evaluate_slo, tightest_bound, SloRule};
use sfs_repro::sched::{MachineParams, Policy};
use sfs_repro::sfs::{KernelOnly, RunOutcome, SfsConfig, SfsController, Sim};
use sfs_repro::workload::{self, Workload, WorkloadSpec};

fn run_sfs(cores: usize, w: &Workload) -> RunOutcome {
    Sim::on(MachineParams::linux(cores))
        .workload(w)
        .controller(SfsController::new(SfsConfig::new(cores)))
        .run()
}

#[test]
fn trace_roundtrip_preserves_the_schedule_exactly() {
    // Serialise a workload to CSV, parse it back, and verify the SFS
    // simulator produces bit-identical outcomes — the trace format loses
    // nothing the scheduler sees.
    let mut spec = WorkloadSpec::openlambda(400, 33);
    spec.io_fraction = 0.25;
    let original = spec.with_load(4, 0.9).generate();
    let parsed = workload::from_csv(&workload::to_csv(&original)).expect("roundtrip");

    let a = run_sfs(4, &original);
    let b = run_sfs(4, &parsed);
    assert_eq!(a.outcomes.len(), b.outcomes.len());
    for (x, y) in a.outcomes.iter().zip(b.outcomes.iter()) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.finished, y.finished, "request {} diverged", x.id);
        assert_eq!(x.ctx_switches, y.ctx_switches);
        assert_eq!(x.demoted, y.demoted);
    }
}

#[test]
fn slo_rule_separates_sfs_from_fifo_at_load() {
    let w = WorkloadSpec::azure_sampled(2_000, 35)
        .with_load(8, 1.0)
        .generate();
    let inv = |outs: &[sfs_repro::sfs::RequestOutcome]| -> Vec<(f64, f64)> {
        outs.iter()
            .map(|o| (o.ideal.as_millis_f64(), o.turnaround.as_millis_f64()))
            .collect()
    };
    let sfs = inv(&run_sfs(8, &w).outcomes);
    let fifo = inv(&Sim::on(MachineParams::linux(8))
        .workload(&w)
        .controller(KernelOnly(Policy::Fifo { prio: 50 }))
        .run()
        .outcomes);

    let rule = SloRule::soft();
    let sfs_report = evaluate_slo(rule, &sfs);
    let fifo_report = evaluate_slo(rule, &fifo);
    assert!(
        sfs_report.attained_fraction > fifo_report.attained_fraction,
        "SFS {} must out-attain FIFO {}",
        sfs_report.attained_fraction,
        fifo_report.attained_fraction
    );
    // The tightest sellable bound under SFS is far below FIFO's.
    let sfs_bound = tightest_bound(0.95, 10.0, &sfs);
    let fifo_bound = tightest_bound(0.95, 10.0, &fifo);
    assert!(
        sfs_bound * 3.0 < fifo_bound,
        "SFS bound {sfs_bound} vs FIFO {fifo_bound}"
    );
}

#[test]
fn cluster_matches_single_host_when_hosts_is_one() {
    // A 1-host cluster must reproduce the plain `Sim` run bit-exactly,
    // for every placement (with one host they all degenerate to "host 0").
    let w = WorkloadSpec::azure_sampled(500, 37)
        .with_load(8, 0.9)
        .generate();
    let cluster = Cluster::new(1, 8);
    let direct = run_sfs(8, &w);
    for p in Placement::ALL {
        let run = cluster.run(p, &w);
        assert_eq!(run.outcomes.len(), direct.outcomes.len());
        for (c, d) in run.outcomes.iter().zip(direct.outcomes.iter()) {
            assert_eq!(c.id, d.id);
            assert_eq!(
                c.finished,
                d.finished,
                "{}: req {} diverged",
                p.name(),
                c.id
            );
            assert_eq!(c.turnaround, d.turnaround);
            assert_eq!(c.rte.to_bits(), d.rte.to_bits(), "{}: rte bits", p.name());
            assert_eq!(c.ctx_switches, d.ctx_switches);
            assert_eq!(c.queue_delay, d.queue_delay);
            assert_eq!(c.demoted, d.demoted);
            assert_eq!(c.offloaded, d.offloaded);
        }
    }
}

#[test]
fn cluster_scales_throughput_with_hosts() {
    // The same workload at fixed arrival rate finishes sooner on 4 hosts
    // than on 1 (makespan comparison).
    let w = WorkloadSpec::azure_sampled(1_200, 39)
        .with_load(8, 1.0)
        .generate();
    let one = Cluster::new(1, 8).run(Placement::RoundRobin, &w);
    let four = Cluster::new(4, 8).run(Placement::RoundRobin, &w);
    let makespan =
        |r: &sfs_repro::faas::ClusterRun| r.outcomes.iter().map(|o| o.finished).max().unwrap();
    assert!(
        makespan(&four) < makespan(&one),
        "4 hosts {} must beat 1 host {}",
        makespan(&four),
        makespan(&one)
    );
    let mean = |r: &sfs_repro::faas::ClusterRun| {
        r.outcomes
            .iter()
            .map(|o| o.turnaround.as_millis_f64())
            .sum::<f64>()
            / r.outcomes.len() as f64
    };
    assert!(mean(&four) < mean(&one));
}
