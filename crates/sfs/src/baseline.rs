//! Pure-kernel baseline descriptors (CFS / FIFO / RR / SRTF).
//!
//! These are the comparators of Fig. 2 (motivation) and the "CFS" series in
//! every evaluation figure: the FaaS server dispatches each request straight
//! to the OS and the kernel scheduler does everything. Under the
//! policy-driven API a baseline is just [`KernelOnly`] with the right
//! dispatch policy (plus the right kernel policy on the machine);
//! [`Baseline`] packages that mapping as a [`ControllerFactory`]. The
//! kernel-policy baselines (EEVDF / DL / SRP) exercise the pluggable
//! [`sfs_sched::policy`] layer the same way.

use sfs_sched::{KernelPolicyKind, MachineParams, Policy};

use crate::policies::KernelOnly;
use crate::sim::{Controller, ControllerFactory};

/// Which pure-kernel baseline scheduler to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Baseline {
    /// Linux default: every request under `SCHED_NORMAL` nice 0.
    Cfs,
    /// Every request under `SCHED_FIFO` at one priority (convoy-prone).
    Fifo,
    /// Every request under `SCHED_RR` at one priority.
    Rr,
    /// The offline oracle.
    Srtf,
    /// Every request under the EEVDF kernel policy (nice 0).
    Eevdf,
    /// Every request under the CBS deadline-class kernel policy.
    Deadline,
    /// Every request under the preemption-ceiling (SRP) kernel policy.
    Srp,
}

impl Baseline {
    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            Baseline::Cfs => "CFS",
            Baseline::Fifo => "FIFO",
            Baseline::Rr => "RR",
            Baseline::Srtf => "SRTF",
            Baseline::Eevdf => "EEVDF",
            Baseline::Deadline => "DL",
            Baseline::Srp => "SRP",
        }
    }

    /// The dispatch policy this baseline runs every request under.
    pub fn policy(self) -> Policy {
        match self {
            Baseline::Cfs
            | Baseline::Srtf
            | Baseline::Eevdf
            | Baseline::Deadline
            | Baseline::Srp => Policy::NORMAL,
            Baseline::Fifo => Policy::Fifo { prio: 50 },
            Baseline::Rr => Policy::Rr { prio: 50 },
        }
    }

    /// The kernel scheduling policy this baseline needs on the machine.
    pub fn kernel_policy(self) -> KernelPolicyKind {
        match self {
            Baseline::Srtf => KernelPolicyKind::Srtf,
            Baseline::Eevdf => KernelPolicyKind::Eevdf,
            Baseline::Deadline => KernelPolicyKind::Deadline,
            Baseline::Srp => KernelPolicyKind::Srp,
            Baseline::Cfs | Baseline::Fifo | Baseline::Rr => KernelPolicyKind::Cfs,
        }
    }
}

impl ControllerFactory for Baseline {
    fn build(&self) -> Box<dyn Controller> {
        Box::new(KernelOnly(self.policy()))
    }

    fn label(&self) -> String {
        self.name().to_string()
    }

    fn configure_machine(&self, params: &mut MachineParams) {
        params.kpolicy = self.kernel_policy();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::Ideal;
    use crate::sim::Sim;
    use crate::stats::RequestOutcome;
    use sfs_simcore::SimDuration;
    use sfs_workload::{Workload, WorkloadSpec};

    fn workload() -> Workload {
        WorkloadSpec::azure_sampled(400, 21)
            .with_load(4, 0.8)
            .generate()
    }

    /// New-API equivalent of the old `run_baseline` helper.
    fn baseline_outcomes(b: Baseline, cores: usize, w: &Workload) -> Vec<RequestOutcome> {
        b.run_on(cores, w).outcomes
    }

    #[test]
    fn all_baselines_complete_every_request() {
        let w = workload();
        for b in [Baseline::Cfs, Baseline::Fifo, Baseline::Rr, Baseline::Srtf] {
            let out = baseline_outcomes(b, 4, &w);
            assert_eq!(out.len(), w.len(), "{} lost requests", b.name());
            // Outcomes sorted by id and complete.
            for (i, o) in out.iter().enumerate() {
                assert_eq!(o.id, i as u64);
                assert!(o.turnaround >= SimDuration::ZERO);
                assert!(o.rte > 0.0 && o.rte <= 1.0);
            }
        }
    }

    #[test]
    fn ideal_is_a_lower_bound() {
        let w = workload();
        let ideal = Sim::on(MachineParams::linux(4))
            .workload(&w)
            .controller(Ideal)
            .run()
            .outcomes;
        for b in [Baseline::Cfs, Baseline::Srtf] {
            let out = baseline_outcomes(b, 4, &w);
            for (o, i) in out.iter().zip(ideal.iter()) {
                assert!(
                    o.turnaround >= i.turnaround,
                    "{}: request {} beat IDEAL",
                    b.name(),
                    o.id
                );
            }
        }
    }

    #[test]
    fn srtf_dominates_cfs_at_high_load() {
        let w = WorkloadSpec::azure_sampled(1_500, 3)
            .with_load(4, 1.0)
            .generate();
        let cfs = baseline_outcomes(Baseline::Cfs, 4, &w);
        let srtf = baseline_outcomes(Baseline::Srtf, 4, &w);
        let mean = |v: &[RequestOutcome]| {
            v.iter().map(|o| o.turnaround.as_millis_f64()).sum::<f64>() / v.len() as f64
        };
        assert!(
            mean(&srtf) < mean(&cfs),
            "SRTF must beat CFS on mean turnaround"
        );
    }

    #[test]
    fn fifo_suffers_convoy_on_short_requests() {
        let w = WorkloadSpec::azure_sampled(1_500, 5)
            .with_load(4, 1.0)
            .generate();
        let fifo = baseline_outcomes(Baseline::Fifo, 4, &w);
        let srtf = baseline_outcomes(Baseline::Srtf, 4, &w);
        // Compare median turnaround of short requests (most of the mass).
        let median_short = |v: &[RequestOutcome]| {
            let mut xs: Vec<f64> = v
                .iter()
                .filter(|o| o.cpu_demand < SimDuration::from_millis(100))
                .map(|o| o.turnaround.as_millis_f64())
                .collect();
            xs.sort_by(f64::total_cmp);
            xs[xs.len() / 2]
        };
        assert!(
            median_short(&fifo) > 3.0 * median_short(&srtf),
            "FIFO {} vs SRTF {}: convoy effect missing",
            median_short(&fifo),
            median_short(&srtf)
        );
    }
}
